"""Random SQL query generation over an arbitrary schema (paper §6.1).

Implements steps 2-4 of the paper's dataset procedure:

2. sample a random structure from the subset CFG;
3. assign a category type to each literal placeholder;
4. bind placeholders to literals of their category — tables first, then
   attribute names, then attribute values — sampling values from the
   actual database instance so generated queries are executable.

The binder is schema-aware: natural-join chains are sampled from the
catalog's joinable pairs, aggregate arguments get numeric columns, and
dotted equality pairs become join predicates on shared columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.grammar.categorizer import LiteralCategory, assign_categories
from repro.grammar.cfg import Grammar, Symbol
from repro.grammar.speakql_grammar import build_speakql_grammar
from repro.grammar.vocabulary import AGGREGATE_KEYWORDS, LITERAL_PLACEHOLDER
from repro.dataset.schemas import JOINABLE
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.formatter import format_literal
from repro.sqlengine.ast_nodes import Literal


@dataclass(frozen=True)
class QueryRecord:
    """One generated query with its provenance."""

    sql: str
    structure: tuple[str, ...]
    categories: tuple[LiteralCategory, ...]
    literals: tuple[str, ...]
    tables: tuple[str, ...]

    @property
    def token_count(self) -> int:
        return len(self.sql.split())


@dataclass
class QueryGenerator:
    """Samples executable queries for a catalog.

    Parameters
    ----------
    catalog:
        Schema instance to bind literals from.
    max_tokens:
        Structure-length cap (queries above it are resampled).
    seed:
        Master seed; generation is fully deterministic.
    """

    catalog: Catalog
    max_tokens: int = 20
    seed: int = 0
    grammar: Grammar = field(default_factory=build_speakql_grammar)

    def generate(self, n: int) -> list[QueryRecord]:
        """Generate ``n`` random bound queries."""
        rng = random.Random(self.seed)
        records: list[QueryRecord] = []
        attempts = 0
        while len(records) < n:
            attempts += 1
            if attempts > n * 200:
                raise DatasetError("query generation failed to converge")
            structure = self.random_structure(rng)
            record = self.bind(structure, rng)
            if record is not None:
                records.append(record)
        return records

    # -- structure sampling ---------------------------------------------------

    def random_structure(self, rng: random.Random) -> tuple[str, ...]:
        """Sample one structure from the CFG within the token budget.

        A target length is drawn uniformly over the feasible range, and
        the derivation is biased toward hitting it, so the dataset's
        token-length distribution is spread out — the paper's key
        difficulty metric for spoken querying is token count.
        """
        min_len = self.grammar.min_terminal_length(self.grammar.start)
        for _ in range(200):
            target = rng.randint(min_len, self.max_tokens)
            tokens = self._try_derive(rng, target)
            if tokens is not None and abs(len(tokens) - target) <= 2:
                return tokens
        raise DatasetError("structure sampling failed to converge")

    def _try_derive(
        self, rng: random.Random, target: int
    ) -> tuple[str, ...] | None:
        form: list[Symbol] = [self.grammar.start]
        for _ in range(400):
            idx = next((i for i, s in enumerate(form) if not s.terminal), None)
            if idx is None:
                return tuple(s.name for s in form)
            fixed = (
                idx
                + sum(
                    self.grammar.min_terminal_length(s) for s in form[idx + 1 :]
                )
            )
            options = []
            weights = []
            for prod in self.grammar.productions_for(form[idx]):
                need = sum(self.grammar.min_terminal_length(s) for s in prod.rhs)
                if fixed + need > self.max_tokens:
                    continue
                options.append(prod)
                # Bias toward expansions whose minimum completion stays
                # close to the target length.
                gap = abs((fixed + need) - target)
                weights.append(1.0 / (1.0 + gap))
            if not options:
                return None
            prod = rng.choices(options, weights=weights, k=1)[0]
            form[idx : idx + 1] = list(prod.rhs)
        return None

    # -- binding ----------------------------------------------------------------

    def bind(
        self, structure: tuple[str, ...], rng: random.Random
    ) -> QueryRecord | None:
        """Bind the placeholders of ``structure`` to catalog literals.

        Returns None when binding is unsatisfiable for this structure
        (e.g. a natural-join chain longer than the schema supports).
        """
        if "*" in structure and "GROUP" in structure:
            return None  # SELECT * with GROUP BY is not meaningful SQL
        categories = assign_categories(structure)
        binder = _Binder(self.catalog, structure, categories, rng)
        try:
            literals = binder.run()
        except DatasetError:
            return None
        tokens: list[str] = []
        fill = iter(literals)
        for token in structure:
            tokens.append(next(fill) if token == LITERAL_PLACEHOLDER else token)
        return QueryRecord(
            sql=" ".join(tokens),
            structure=structure,
            categories=tuple(categories),
            literals=tuple(binder.raw_literals),
            tables=tuple(binder.tables),
        )


class _Binder:
    """Single-use binder for one structure."""

    def __init__(
        self,
        catalog: Catalog,
        structure: tuple[str, ...],
        categories: list[LiteralCategory],
        rng: random.Random,
    ):
        self.catalog = catalog
        self.structure = structure
        self.categories = categories
        self.rng = rng
        self.tables: list[str] = []
        self.raw_literals: list[str] = []
        self._positions = [
            pos for pos, tok in enumerate(structure) if tok == LITERAL_PLACEHOLDER
        ]
        self._forced: dict[int, str] = {}

    def run(self) -> list[str]:
        self._bind_tables()
        self._bind_dotted_joins()
        rendered: list[str] = []
        last_attribute: str | None = None
        dotted_table: str | None = None
        pending_between: list[str] = []
        for idx, category in enumerate(self.categories):
            pos = self._positions[idx]
            forced = self._forced.get(idx)
            if forced is not None:
                rendered.append(forced)
                self.raw_literals.append(forced)
                if category is LiteralCategory.ATTRIBUTE:
                    last_attribute = forced
                    dotted_table = None
                else:
                    dotted_table = forced
                continue
            if category is LiteralCategory.TABLE:
                dotted_table = self._table_at(idx)
                rendered.append(dotted_table)
                continue
            if category is LiteralCategory.ATTRIBUTE:
                attribute = self._bind_attribute(pos, dotted_table)
                dotted_table = None
                last_attribute = attribute
                rendered.append(attribute)
                self.raw_literals.append(attribute)
                continue
            value = self._bind_value(pos, last_attribute, pending_between)
            rendered.append(value)
        return rendered

    # -- dotted joins -----------------------------------------------------------

    def _dotted_equality_groups(self) -> list[tuple[int, int, int, int]]:
        """Placeholder-index quadruples of ``x . x = x . x`` patterns."""
        pos_to_idx = {pos: idx for idx, pos in enumerate(self._positions)}
        groups: list[tuple[int, int, int, int]] = []
        s = self.structure
        for p in range(len(s) - 6):
            window = s[p : p + 7]
            if (
                window[0] == LITERAL_PLACEHOLDER
                and window[1] == "."
                and window[2] == LITERAL_PLACEHOLDER
                and window[3] == "="
                and window[4] == LITERAL_PLACEHOLDER
                and window[5] == "."
                and window[6] == LITERAL_PLACEHOLDER
            ):
                groups.append(
                    (
                        pos_to_idx[p],
                        pos_to_idx[p + 2],
                        pos_to_idx[p + 4],
                        pos_to_idx[p + 6],
                    )
                )
        return groups

    def _bind_dotted_joins(self) -> None:
        """Bind dotted equality patterns as join predicates on shared keys."""
        groups = self._dotted_equality_groups()
        if not groups:
            return
        for t1_idx, a1_idx, t2_idx, a2_idx in groups:
            pair = self._shared_key_pair()
            if pair is None:
                raise DatasetError("no shared join key for dotted equality")
            (table1, table2, key) = pair
            self._forced[t1_idx] = table1
            self._forced[a1_idx] = key
            self._forced[t2_idx] = table2
            self._forced[a2_idx] = key

    def _shared_key_pair(self) -> tuple[str, str, str] | None:
        if len(self.tables) < 2:
            return None  # dotted joins need two FROM tables
        tables = self.tables
        candidates = []
        for i, name1 in enumerate(tables):
            for name2 in tables[i + 1 :]:
                t1 = self.catalog.table(name1)
                t2 = self.catalog.table(name2)
                shared = [c for c in t1.columns if t2.has_column(c)]
                for column in shared:
                    candidates.append((name1, name2, column))
        if not candidates:
            return None
        return self.rng.choice(candidates)

    # -- tables ----------------------------------------------------------------

    def _bind_tables(self) -> None:
        """Choose the FROM tables (and keep them for dotted references)."""
        from_tables = [
            idx
            for idx, cat in enumerate(self.categories)
            if cat is LiteralCategory.TABLE and self._in_from_clause(idx)
        ]
        count = len(from_tables)
        if count == 0:
            raise DatasetError("structure without FROM tables")
        natural = "NATURAL" in self.structure
        joinable = JOINABLE.get(self.catalog.name, {})
        names = self.catalog.table_names()
        if count == 1:
            self.tables = [self.rng.choice(names)]
            return
        if natural and joinable:
            chain = self._join_chain(count, joinable)
            if chain is None:
                raise DatasetError("no joinable chain of that length")
            self.tables = chain
            return
        if count > len(names):
            raise DatasetError("more FROM tables than schema tables")
        # Comma joins: without join predicates an N-way cross product is
        # meaningless (and explosive); require at least count-1 dotted
        # equality patterns for 3+ tables.
        dotted = len(self._dotted_equality_groups())
        if count > 2 and dotted < count - 1:
            raise DatasetError("comma join without enough join predicates")
        if joinable and count == 2:
            base = self.rng.choice([t for t in names if joinable.get(t)])
            other = self.rng.choice(joinable[base])
            self.tables = [base, other]
            return
        self.tables = self.rng.sample(names, count)

    def _join_chain(
        self, count: int, joinable: dict[str, list[str]]
    ) -> list[str] | None:
        for _ in range(40):
            start = self.rng.choice(list(joinable))
            chain = [start]
            while len(chain) < count:
                options = [
                    t for t in joinable.get(chain[-1], []) if t not in chain
                ]
                if not options:
                    break
                chain.append(self.rng.choice(options))
            if len(chain) == count:
                return chain
        return None

    def _in_from_clause(self, idx: int) -> bool:
        """Table placeholders in FROM (vs dotted pairs elsewhere)."""
        pos = self._positions[idx]
        nxt = self.structure[pos + 1] if pos + 1 < len(self.structure) else ""
        return nxt != "."

    def _table_at(self, idx: int) -> str:
        if self._in_from_clause(idx):
            table = self.tables[self._from_rank(idx)]
        else:
            table = self.rng.choice(self.tables) if self.tables else (
                self.rng.choice(self.catalog.table_names())
            )
        self.raw_literals.append(table)
        return table

    def _from_rank(self, idx: int) -> int:
        rank = 0
        for j in range(idx):
            if self.categories[j] is LiteralCategory.TABLE and self._in_from_clause(j):
                rank += 1
        return rank

    # -- attributes ---------------------------------------------------------------

    def _bind_attribute(self, pos: int, dotted_table: str | None) -> str:
        numeric_needed = self._inside_numeric_aggregate(pos)
        if dotted_table is not None:
            columns = self.catalog.attribute_names_of(dotted_table)
        else:
            columns = []
            for table in self.tables:
                columns.extend(self.catalog.attribute_names_of(table))
        if not columns:
            columns = self.catalog.attribute_names()
        if numeric_needed:
            numeric = [c for c in columns if self._column_type(c) in ("int", "float")]
            if not numeric:
                raise DatasetError("aggregate needs a numeric column")
            columns = numeric
        return self.rng.choice(columns)

    def _inside_numeric_aggregate(self, pos: int) -> bool:
        if pos < 2:
            return False
        prev, prev2 = self.structure[pos - 1], self.structure[pos - 2]
        return prev == "(" and prev2 in AGGREGATE_KEYWORDS and prev2 != "COUNT"

    def _column_type(self, column: str) -> str:
        for schema in self.catalog.schema():
            for col in schema.columns:
                if col.name.lower() == column.lower():
                    return col.type_name
        return "string"

    # -- values -------------------------------------------------------------------

    def _bind_value(
        self, pos: int, attribute: str | None, pending_between: list[str]
    ) -> str:
        if pos > 0 and self.structure[pos - 1].upper() == "LIMIT":
            value = str(self.rng.randint(1, 20))
            self.raw_literals.append(value)
            return value
        sample = self._sample_column_value(attribute)
        self.raw_literals.append(str(sample.value))
        return format_literal(sample)

    def _sample_column_value(self, attribute: str | None) -> Literal:
        if attribute is not None:
            for table_name in self.tables or self.catalog.table_names():
                table = self.catalog.table(table_name)
                if table.has_column(attribute):
                    values = [
                        v
                        for v in table.column_values(attribute)
                        if v is not None
                    ]
                    if values:
                        return Literal(self.rng.choice(values))
        # No governing attribute resolved: sample any string value.
        pool = self.catalog.string_attribute_values()
        if not pool:
            raise DatasetError("catalog has no sampleable values")
        return Literal(self.rng.choice(pool))
