"""The unified request/response API of the serving surface.

Every way of asking SpeakQL a question — the batch service, the serving
runtime, the CLI, the REPL, the JSON-lines daemon — speaks the same two
frozen dataclasses:

- :class:`QueryRequest` — what to run: the input text, the dictation
  seed (``None`` = correct a raw transcription), an optional speaker
  profile, an optional **deadline** (a latency budget in seconds,
  enforced cooperatively at stage boundaries), and per-request
  **config overrides** applied on top of the serving pipeline's
  :class:`~repro.core.pipeline.SpeakQLConfig`.
- :class:`QueryResponse` — what happened: the pipeline output (when one
  was produced), a first-class **outcome** (one of :data:`OUTCOMES`),
  the per-stage timings, the optional forensic record, and — for
  degraded service — which rung of the degradation ladder answered.

The historical ``(sql, seed)`` tuple calling convention survives only
as a deprecation shim in :func:`QueryRequest.from_legacy`; every call
site in the repository constructs :class:`QueryRequest` directly.

Config overrides flow through the versioned
:meth:`~repro.core.pipeline.SpeakQLConfig.to_dict` /
:meth:`~repro.core.pipeline.SpeakQLConfig.from_dict` serialization (the
same format replay bundles store), so a request that asks for
``{"search_kernel": "flat", "top_k": 1}`` is reproducible from its
serialized form byte for byte.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.result import ComponentTimings, SpeakQLOutput
from repro.errors import DeadlineExceededError

if TYPE_CHECKING:
    from repro.asr.speakers import SpeakerProfile
    from repro.observability.forensics import QueryRecord

# -- outcomes ----------------------------------------------------------------

#: Request answered at full fidelity by the requested configuration.
OUTCOME_SERVED = "served"
#: Request answered, but by a cheaper rung of the degradation ladder.
OUTCOME_DEGRADED = "degraded"
#: Request rejected at admission (queue full) — never executed.
OUTCOME_SHED = "shed"
#: Request stopped at a stage boundary after its deadline passed.
OUTCOME_TIMEOUT = "timeout"
#: Every ladder rung raised; the error of the last attempt is reported.
OUTCOME_FAILED = "failed"

#: Every outcome a :class:`QueryResponse` can carry, exactly one per
#: request — their counts sum to the requests submitted.
OUTCOMES = (
    OUTCOME_SERVED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
    OUTCOME_FAILED,
)


class BatchQueryError(RuntimeError):
    """A batch worker raised; carries the failing request's input index.

    The original exception is chained as ``__cause__`` and its message
    is embedded, so existing ``match=``-style assertions on the
    underlying error keep working while the traceback now names which
    request died.
    """

    def __init__(self, index: int, request: "QueryRequest",
                 error: BaseException) -> None:
        preview = request.text if len(request.text) <= 60 else (
            request.text[:57] + "...")
        super().__init__(
            f"batch request #{index} ({preview!r}, seed={request.seed}) "
            f"failed: {error}"
        )
        self.index = index
        self.request = request


# -- requests ----------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for any SpeakQL serving surface.

    ``seed`` selects the dictation path (speech simulation); ``None``
    treats ``text`` as a raw ASR transcription to correct.  ``deadline``
    is a latency budget in **seconds from submission** (``None`` = no
    deadline); ``overrides`` are :class:`SpeakQLConfig` field overrides
    applied for this request only, stored as a sorted tuple of pairs so
    the request stays frozen and hashable.  ``trace_id`` is the
    wire-level correlation id: clients may supply one, the daemons
    generate one otherwise, and it is echoed on the response and stamped
    on every span the request opens.
    """

    text: str
    seed: int | None = None
    nbest: int | None = None
    speaker: "SpeakerProfile | None" = None
    deadline: float | None = None
    overrides: tuple[tuple[str, object], ...] = ()
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )
        elif not isinstance(self.overrides, tuple):
            object.__setattr__(
                self, "overrides", tuple(sorted(dict(self.overrides).items()))
            )
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be a non-negative budget in seconds")

    @property
    def mode(self) -> str:
        """``"speech"`` (dictation) or ``"transcription"`` (correction)."""
        return "transcription" if self.seed is None else "speech"

    @property
    def voice(self) -> "SpeakerProfile | None":
        """Legacy alias of :attr:`speaker`."""
        return self.speaker

    def overrides_dict(self) -> dict[str, object]:
        """The per-request config overrides as a plain dict."""
        return dict(self.overrides)

    def with_overrides(self, **overrides: object) -> "QueryRequest":
        """A copy with ``overrides`` merged over the existing ones."""
        merged = self.overrides_dict()
        merged.update(overrides)
        return replace(self, overrides=tuple(sorted(merged.items())))

    @classmethod
    def from_legacy(cls, query: object) -> "QueryRequest":
        """Normalize a legacy request shape into a :class:`QueryRequest`.

        Accepts a :class:`QueryRequest` (returned as-is), a bare string
        (corrected without an ASR step), an object with ``sql``/``seed``
        attributes (e.g. :class:`~repro.dataset.spoken.SpokenQuery`), or
        the **deprecated** ``(sql_text, seed)`` tuple — the tuple form
        emits a :class:`DeprecationWarning` and exists only so pre-API
        callers keep working.
        """
        if isinstance(query, cls):
            return query
        if isinstance(query, str):
            return cls(text=query)
        if isinstance(query, tuple) and len(query) == 2:
            warnings.warn(
                "(sql, seed) tuple requests are deprecated; construct "
                "repro.api.QueryRequest(text=..., seed=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            text, seed = query
            return cls(text=text, seed=seed)
        sql = getattr(query, "sql", None)
        if isinstance(sql, str):
            return cls(text=sql, seed=getattr(query, "seed", None))
        raise TypeError(f"cannot interpret query request: {query!r}")


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class QueryResponse:
    """What one :class:`QueryRequest` produced.

    ``output`` is present for ``served``/``degraded`` outcomes and
    ``None`` for ``shed``/``timeout``/``failed``; ``rung`` is the
    degradation-ladder rung that answered (0 = the requested config);
    ``error`` carries the final error string of a ``failed`` (or the
    boundary description of a ``timeout``) response.
    """

    request: QueryRequest
    outcome: str
    output: SpeakQLOutput | None = None
    record: "QueryRecord | None" = None
    rung: int = 0
    attempts: int = 1
    error: str | None = None
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; expected one of {OUTCOMES}"
            )

    @property
    def ok(self) -> bool:
        """Whether an answer was produced (served or degraded)."""
        return self.output is not None

    @property
    def sql(self) -> str:
        """The top-1 corrected SQL ("" when no answer was produced)."""
        return self.output.sql if self.output is not None else ""

    @property
    def timings(self) -> ComponentTimings:
        """Per-stage timings (empty when the query never executed)."""
        if self.output is not None:
            return self.output.timings
        return ComponentTimings()

    def to_dict(self) -> dict:
        """JSON-ready summary (the daemon's wire format)."""
        return {
            "outcome": self.outcome,
            "sql": self.sql,
            "queries": list(self.output.queries) if self.output else [],
            "rung": self.rung,
            "attempts": self.attempts,
            "error": self.error,
            "wall_ms": round(self.wall_seconds * 1000.0, 3),
            "trace_id": self.request.trace_id,
        }


#: Convenience shed/timeout constructors used by the serving runtime.
def shed_response(request: QueryRequest) -> QueryResponse:
    """The response for a request rejected at admission."""
    return QueryResponse(
        request=request, outcome=OUTCOME_SHED, attempts=0,
        error="queue full: request shed at admission",
    )


__all__ = [
    "BatchQueryError",
    "DeadlineExceededError",
    "OUTCOMES",
    "OUTCOME_DEGRADED",
    "OUTCOME_FAILED",
    "OUTCOME_SERVED",
    "OUTCOME_SHED",
    "OUTCOME_TIMEOUT",
    "QueryRequest",
    "QueryResponse",
    "shed_response",
]
