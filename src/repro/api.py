"""The unified request/response API of the serving surface.

Every way of asking SpeakQL a question — the batch service, the serving
runtime, the CLI, the REPL, the JSON-lines daemon — speaks the same two
frozen dataclasses:

- :class:`QueryRequest` — what to run: the input text, the dictation
  seed (``None`` = correct a raw transcription), an optional speaker
  profile, an optional **deadline** (a latency budget in seconds,
  enforced cooperatively at stage boundaries), and per-request
  **config overrides** applied on top of the serving pipeline's
  :class:`~repro.core.pipeline.SpeakQLConfig`.
- :class:`QueryResponse` — what happened: the pipeline output (when one
  was produced), a first-class **outcome** (one of :data:`OUTCOMES`),
  the per-stage timings, the optional forensic record, and — for
  degraded service — which rung of the degradation ladder answered.

Requests may belong to a **correction session**: ``session_id``/``turn``
key per-query decode state cached by the serving runtime's
:class:`~repro.serving.sessions.SessionStore`, and ``edit`` carries the
clause-level correction (:class:`ClauseEdit` — a re-dictated clause or a
SQL-keyboard token patch) a turn applies.  A correction turn re-searches
only the affected clause span and splices the cached results for
unchanged clauses, bit-identical to a cold decode of the same text.

The historical ``(sql, seed)`` tuple calling convention has been
removed; :func:`QueryRequest.from_legacy` now raises :class:`TypeError`
with a migration hint.  Every call site constructs
:class:`QueryRequest` directly.

Config overrides flow through the versioned
:meth:`~repro.core.pipeline.SpeakQLConfig.to_dict` /
:meth:`~repro.core.pipeline.SpeakQLConfig.from_dict` serialization (the
same format replay bundles store), so a request that asks for
``{"search_kernel": "flat", "top_k": 1}`` is reproducible from its
serialized form byte for byte.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.result import ComponentTimings, SpeakQLOutput
from repro.errors import DeadlineExceededError

if TYPE_CHECKING:
    from repro.asr.speakers import SpeakerProfile
    from repro.observability.forensics import QueryRecord

# -- outcomes ----------------------------------------------------------------

#: Request answered at full fidelity by the requested configuration.
OUTCOME_SERVED = "served"
#: Request answered, but by a cheaper rung of the degradation ladder.
OUTCOME_DEGRADED = "degraded"
#: Request rejected at admission (queue full) — never executed.
OUTCOME_SHED = "shed"
#: Request stopped at a stage boundary after its deadline passed.
OUTCOME_TIMEOUT = "timeout"
#: Every ladder rung raised; the error of the last attempt is reported.
OUTCOME_FAILED = "failed"

#: Every outcome a :class:`QueryResponse` can carry, exactly one per
#: request — their counts sum to the requests submitted.
OUTCOMES = (
    OUTCOME_SERVED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
    OUTCOME_FAILED,
)


class BatchQueryError(RuntimeError):
    """A batch worker raised; carries the failing request's input index.

    The original exception is chained as ``__cause__`` and its message
    is embedded, so existing ``match=``-style assertions on the
    underlying error keep working while the traceback now names which
    request died.
    """

    def __init__(self, index: int, request: "QueryRequest",
                 error: BaseException) -> None:
        preview = request.text if len(request.text) <= 60 else (
            request.text[:57] + "...")
        super().__init__(
            f"batch request #{index} ({preview!r}, seed={request.seed}) "
            f"failed: {error}"
        )
        self.index = index
        self.request = request


# -- clause edits ------------------------------------------------------------

#: The clause re-dictation edit: the user spoke the clause again and the
#: turn carries the new transcription of that clause.
EDIT_REDICTATE = "redictate"
#: The SQL-keyboard edit: the user touch-patched tokens in place and the
#: turn carries the clause's patched text.
EDIT_TOKEN_PATCH = "token_patch"

#: Every edit kind a correction turn can carry (closed set).
EDIT_KINDS = (EDIT_REDICTATE, EDIT_TOKEN_PATCH)

#: Clause names an edit may target (the interface's record buttons; see
#: :class:`repro.interface.display.Clause`).
CLAUSE_NAMES = ("SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "LIMIT")


@dataclass(frozen=True)
class ClauseEdit:
    """One clause-level correction applied by a session turn.

    ``kind`` is one of :data:`EDIT_KINDS`; ``clause`` names the clause
    the edit targets (one of :data:`CLAUSE_NAMES`); ``text`` is the
    clause's new transcription (``redictate``) or its patched token
    string (``token_patch``).  Both kinds re-search only the affected
    clause span — the distinction is provenance (spoken vs touched),
    kept for forensics, metrics, and interface costing.
    """

    kind: str
    clause: str
    text: str

    def __post_init__(self) -> None:
        if self.kind not in EDIT_KINDS:
            raise ValueError(
                f"unknown edit kind {self.kind!r}; expected one of {EDIT_KINDS}"
            )
        if self.clause not in CLAUSE_NAMES:
            raise ValueError(
                f"unknown clause {self.clause!r}; expected one of {CLAUSE_NAMES}"
            )
        if not isinstance(self.text, str) or not self.text.strip():
            raise ValueError("edit needs a non-empty 'text' string")

    def to_dict(self) -> dict:
        """JSON-ready wire shape (see :mod:`repro.serving.protocol`)."""
        return {"kind": self.kind, "clause": self.clause, "text": self.text}

    @classmethod
    def from_dict(cls, data: object) -> "ClauseEdit":
        if not isinstance(data, Mapping):
            raise ValueError("'edit' must be a JSON object")
        unknown = sorted(set(data) - {"kind", "clause", "text"})
        if unknown:
            raise ValueError(f"unknown edit key(s): {unknown}")
        missing = sorted({"kind", "clause", "text"} - set(data))
        if missing:
            raise ValueError(f"edit is missing key(s): {missing}")
        return cls(kind=data["kind"], clause=data["clause"], text=data["text"])


# -- requests ----------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for any SpeakQL serving surface.

    ``seed`` selects the dictation path (speech simulation); ``None``
    treats ``text`` as a raw ASR transcription to correct.  ``deadline``
    is a latency budget in **seconds from submission** (``None`` = no
    deadline); ``overrides`` are :class:`SpeakQLConfig` field overrides
    applied for this request only, stored as a sorted tuple of pairs so
    the request stays frozen and hashable.  ``trace_id`` is the
    wire-level correlation id: clients may supply one, the daemons
    generate one otherwise, and it is echoed on the response and stamped
    on every span the request opens.

    ``session_id``/``turn`` enrol the request in a correction session:
    turn 0 is the cold decode that seeds the
    :class:`~repro.serving.sessions.SessionStore` entry, and every turn
    ``>= 1`` carries exactly one :class:`ClauseEdit`.  Sessions are
    transcription-mode only (``seed`` must stay ``None``); ``stream``
    asks the daemons to emit clause-level partial frames before the
    final reply.
    """

    text: str
    seed: int | None = None
    nbest: int | None = None
    speaker: "SpeakerProfile | None" = None
    deadline: float | None = None
    overrides: tuple[tuple[str, object], ...] = ()
    trace_id: str | None = None
    session_id: str | None = None
    turn: int = 0
    edit: "ClauseEdit | None" = None
    stream: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )
        elif isinstance(self.overrides, (tuple, list)):
            pairs = tuple(self.overrides)
            for pair in pairs:
                if (
                    not isinstance(pair, (tuple, list))
                    or len(pair) != 2
                    or not isinstance(pair[0], str)
                ):
                    raise TypeError(
                        "overrides pairs must be (name, value) 2-tuples "
                        f"with a string name, got {pair!r}"
                    )
            object.__setattr__(
                self, "overrides", tuple(tuple(pair) for pair in pairs)
            )
        else:
            raise TypeError(
                "overrides must be a mapping or a tuple of (name, value) "
                f"pairs, not {type(self.overrides).__name__}"
            )
        if self.nbest is not None and self.nbest < 1:
            raise ValueError("nbest must be >= 1 when given")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be a non-negative budget in seconds")
        if self.turn < 0:
            raise ValueError("turn must be >= 0")
        if self.turn > 0 and self.session_id is None:
            raise ValueError("turn > 0 requires a session_id")
        if self.edit is not None:
            if self.session_id is None or self.turn < 1:
                raise ValueError(
                    "an edit rides a correction turn: it requires a "
                    "session_id and turn >= 1"
                )
        elif self.session_id is not None and self.turn >= 1:
            raise ValueError(
                "correction turns (turn >= 1) must carry an edit; "
                "turn 0 is the cold decode"
            )
        if self.session_id is not None and self.seed is not None:
            raise ValueError(
                "sessions are transcription-mode only: a session request "
                "must leave seed=None"
            )

    @property
    def mode(self) -> str:
        """``"speech"`` (dictation) or ``"transcription"`` (correction)."""
        return "transcription" if self.seed is None else "speech"

    def overrides_dict(self) -> dict[str, object]:
        """The per-request config overrides as a plain dict."""
        return dict(self.overrides)

    def with_overrides(self, **overrides: object) -> "QueryRequest":
        """A copy with ``overrides`` merged over the existing ones."""
        merged = self.overrides_dict()
        merged.update(overrides)
        return replace(self, overrides=tuple(sorted(merged.items())))

    @classmethod
    def from_legacy(cls, query: object) -> "QueryRequest":
        """Normalize a legacy request shape into a :class:`QueryRequest`.

        Accepts a :class:`QueryRequest` (returned as-is), a bare string
        (corrected without an ASR step), or an object with
        ``sql``/``seed`` attributes (e.g.
        :class:`~repro.dataset.spoken.SpokenQuery`).  The historical
        ``(sql_text, seed)`` tuple form was removed and now raises
        :class:`TypeError` with a migration hint.
        """
        if isinstance(query, cls):
            return query
        if isinstance(query, str):
            return cls(text=query)
        if isinstance(query, tuple) and len(query) == 2:
            raise TypeError(
                "(sql, seed) tuple requests were removed; construct "
                "repro.api.QueryRequest(text=..., seed=...) instead"
            )
        sql = getattr(query, "sql", None)
        if isinstance(sql, str):
            return cls(text=sql, seed=getattr(query, "seed", None))
        raise TypeError(f"cannot interpret query request: {query!r}")


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class QueryResponse:
    """What one :class:`QueryRequest` produced.

    ``output`` is present for ``served``/``degraded`` outcomes and
    ``None`` for ``shed``/``timeout``/``failed``; ``rung`` is the
    degradation-ladder rung that answered (0 = the requested config);
    ``error`` carries the final error string of a ``failed`` (or the
    boundary description of a ``timeout``) response, and ``error_kind``
    the matching entry of the wire protocol's closed catalog
    (:data:`repro.serving.protocol.ERROR_KINDS`) when one applies.

    For session requests ``reused_spans`` names the clauses whose cached
    decode was spliced in unchanged, ``partial`` marks a clause-level
    partial frame (the final reply always has ``partial=False``), and
    ``partials`` buffers the partial frames the daemons write before the
    final reply (never serialized into :meth:`to_dict` itself).
    """

    request: QueryRequest
    outcome: str
    output: SpeakQLOutput | None = None
    record: "QueryRecord | None" = None
    rung: int = 0
    attempts: int = 1
    error: str | None = None
    wall_seconds: float = 0.0
    reused_spans: tuple[str, ...] = ()
    partial: bool = False
    error_kind: str | None = None
    partials: tuple = ()

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; expected one of {OUTCOMES}"
            )

    @property
    def ok(self) -> bool:
        """Whether an answer was produced (served or degraded)."""
        return self.output is not None

    @property
    def sql(self) -> str:
        """The top-1 corrected SQL ("" when no answer was produced)."""
        return self.output.sql if self.output is not None else ""

    @property
    def timings(self) -> ComponentTimings:
        """Per-stage timings (empty when the query never executed)."""
        if self.output is not None:
            return self.output.timings
        return ComponentTimings()

    @property
    def session_id(self) -> str | None:
        """The correction session this response belongs to (echoed)."""
        return self.request.session_id

    @property
    def turn(self) -> int:
        """The session turn this response answers (echoed)."""
        return self.request.turn

    def to_dict(self) -> dict:
        """JSON-ready summary (the daemon's wire format)."""
        return {
            "outcome": self.outcome,
            "sql": self.sql,
            "queries": list(self.output.queries) if self.output else [],
            "rung": self.rung,
            "attempts": self.attempts,
            "error": self.error,
            "error_kind": self.error_kind,
            "wall_ms": round(self.wall_seconds * 1000.0, 3),
            "trace_id": self.request.trace_id,
            "session_id": self.session_id,
            "turn": self.turn,
            "reused_spans": list(self.reused_spans),
            "partial": self.partial,
        }


#: Convenience shed/timeout constructors used by the serving runtime.
def shed_response(request: QueryRequest) -> QueryResponse:
    """The response for a request rejected at admission."""
    return QueryResponse(
        request=request, outcome=OUTCOME_SHED, attempts=0,
        error="queue full: request shed at admission",
    )


__all__ = [
    "BatchQueryError",
    "CLAUSE_NAMES",
    "ClauseEdit",
    "DeadlineExceededError",
    "EDIT_KINDS",
    "EDIT_REDICTATE",
    "EDIT_TOKEN_PATCH",
    "OUTCOMES",
    "OUTCOME_DEGRADED",
    "OUTCOME_FAILED",
    "OUTCOME_SERVED",
    "OUTCOME_SHED",
    "OUTCOME_TIMEOUT",
    "QueryRequest",
    "QueryResponse",
    "shed_response",
]
