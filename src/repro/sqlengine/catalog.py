"""Database catalog: schema metadata over in-memory tables.

The catalog is the "Database Metadata" box of the paper's architecture
(Figure 2): it exposes table names, attribute names, and attribute values,
which literal determination indexes phonetically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlSemanticError
from repro.sqlengine.table import Table, infer_column_type


@dataclass(frozen=True)
class ColumnSchema:
    """Schema entry for one column."""

    name: str
    type_name: str  # string | int | float | date


@dataclass(frozen=True)
class TableSchema:
    """Schema entry for one table."""

    name: str
    columns: tuple[ColumnSchema, ...]

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass
class Catalog:
    """A named collection of tables with case-insensitive lookup."""

    name: str = "db"
    _tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise SqlSemanticError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise SqlSemanticError(f"unknown table {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    def table_names(self) -> list[str]:
        """Original-cased table names."""
        return [t.name for t in self._tables.values()]

    def attribute_names(self) -> list[str]:
        """Original-cased attribute names across all tables, de-duplicated."""
        seen: dict[str, str] = {}
        for table in self._tables.values():
            for column in table.columns:
                seen.setdefault(column.lower(), column)
        return list(seen.values())

    def attribute_names_of(self, table_name: str) -> list[str]:
        return list(self.table(table_name).columns)

    def tables_with_column(self, column: str) -> list[Table]:
        key = column.lower()
        return [t for t in self._tables.values() if t.has_column(key)]

    def string_attribute_values(self, limit_per_column: int | None = None) -> list[str]:
        """Distinct string attribute values across the database.

        The paper indexes "attribute values (only strings, excluding
        numbers or dates)" phonetically; this is the corpus it indexes.
        ``limit_per_column`` optionally caps values per column to bound
        index size on large instances.
        """
        seen: dict[str, None] = {}
        for table in self._tables.values():
            for column in table.column_keys:
                values = table.distinct_strings(column)
                if limit_per_column is not None:
                    values = values[:limit_per_column]
                for value in values:
                    seen.setdefault(value)
        return list(seen)

    def schema(self) -> list[TableSchema]:
        """Inferred schema of every table."""
        out = []
        for table in self._tables.values():
            columns = tuple(
                ColumnSchema(
                    name=column,
                    type_name=infer_column_type(table.column_values(column)),
                )
                for column in table.columns
            )
            out.append(TableSchema(name=table.name, columns=columns))
        return out
