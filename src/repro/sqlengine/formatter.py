"""Canonical SQL rendering.

The SpeakQL interface displays queries in a spaced, canonical style (see
paper Table 6): every token separated by a space, string values in single
quotes, dates as quoted ISO dates.  The formatter renders ASTs in exactly
that style, so ``parse_select(format_statement(stmt)) == stmt`` holds for
every statement of the subset (round-trip property, covered by tests).
"""

from __future__ import annotations

import datetime

from repro.sqlengine.ast_nodes import (
    Aggregate,
    BetweenPredicate,
    BinaryCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    Literal,
    Operand,
    SelectItem,
    SelectStatement,
    Star,
)


def format_statement(stmt: SelectStatement) -> str:
    """Render a statement as canonical SQL text."""
    parts = ["SELECT", _format_select_list(stmt.select_items)]
    parts.append("FROM")
    if stmt.natural_join:
        parts.append(" natural join ".join(t.name for t in stmt.from_tables))
    else:
        parts.append(" , ".join(t.name for t in stmt.from_tables))
    if stmt.where is not None:
        parts.extend(["WHERE", format_condition(stmt.where)])
    if stmt.group_by:
        parts.extend(
            ["GROUP BY", " , ".join(_format_colref(c) for c in stmt.group_by)]
        )
    if stmt.order_by:
        parts.extend(
            ["ORDER BY", " , ".join(_format_colref(c) for c in stmt.order_by)]
        )
    if stmt.limit is not None:
        parts.extend(["LIMIT", str(stmt.limit)])
    return " ".join(parts)


def _format_select_list(items: tuple[SelectItem, ...]) -> str:
    return " , ".join(_format_select_item(item) for item in items)


def _format_select_item(item: SelectItem) -> str:
    if isinstance(item, Star):
        return "*"
    if isinstance(item, Aggregate):
        arg = "*" if isinstance(item.argument, Star) else _format_colref(item.argument)
        return f"{item.func.upper()} ( {arg} )"
    return _format_colref(item)


def _format_colref(ref: ColumnRef) -> str:
    if ref.table is not None:
        return f"{ref.table} . {ref.column}"
    return ref.column


def format_condition(condition: Condition) -> str:
    """Render a WHERE condition tree."""
    if isinstance(condition, BinaryCondition):
        left = format_condition(condition.left)
        right = format_condition(condition.right)
        return f"{left} {condition.op} {right}"
    if isinstance(condition, Comparison):
        return (
            f"{_format_operand(condition.left)} {condition.op} "
            f"{_format_operand(condition.right)}"
        )
    if isinstance(condition, BetweenPredicate):
        keyword = "NOT BETWEEN" if condition.negated else "BETWEEN"
        return (
            f"{_format_colref(condition.probe)} {keyword} "
            f"{format_literal(condition.low)} AND {format_literal(condition.high)}"
        )
    if isinstance(condition, InPredicate):
        if condition.subquery is not None:
            inner = format_statement(condition.subquery)
        else:
            inner = " , ".join(format_literal(v) for v in condition.values)
        return f"{_format_colref(condition.probe)} IN ( {inner} )"
    raise TypeError(f"unknown condition node: {condition!r}")


def _format_operand(operand: Operand) -> str:
    if isinstance(operand, Literal):
        return format_literal(operand)
    return _format_colref(operand)


def format_literal(literal: Literal) -> str:
    """Render a literal value: quoted strings/dates, bare numbers."""
    value = literal.value
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
