"""In-memory SQL engine substrate.

The paper evaluates execution accuracy (Table 5) and binds literal values
against real database instances; both require an actual SQL engine for the
supported subset.  This package provides:

- :mod:`repro.sqlengine.lexer` / :mod:`repro.sqlengine.parser`: a
  recursive-descent parser for the paper's SQL subset (Box 1 + natural
  joins + one-level nested ``IN (SELECT ...)``).
- :mod:`repro.sqlengine.ast_nodes`: the typed AST.
- :mod:`repro.sqlengine.formatter`: canonical SQL rendering (the display
  form shown in the SpeakQL interface).
- :mod:`repro.sqlengine.catalog` / :mod:`repro.sqlengine.table`: schema
  metadata and in-memory tables.
- :mod:`repro.sqlengine.executor`: SPJA execution with GROUP BY,
  ORDER BY, LIMIT, BETWEEN/IN predicates, natural and comma joins, and
  one level of nesting.
"""

from repro.sqlengine.ast_nodes import (
    Aggregate,
    BetweenPredicate,
    BinaryCondition,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.executor import execute
from repro.sqlengine.formatter import format_statement
from repro.sqlengine.lexer import Lexer, SqlToken, SqlTokenKind
from repro.sqlengine.parser import parse_select
from repro.sqlengine.table import Row, Table

__all__ = [
    "Aggregate",
    "BetweenPredicate",
    "BinaryCondition",
    "ColumnRef",
    "Comparison",
    "InPredicate",
    "Literal",
    "SelectStatement",
    "Star",
    "TableRef",
    "Catalog",
    "ColumnSchema",
    "TableSchema",
    "execute",
    "format_statement",
    "Lexer",
    "SqlToken",
    "SqlTokenKind",
    "parse_select",
    "Row",
    "Table",
]
