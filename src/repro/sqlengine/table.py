"""In-memory table representation."""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import SqlSemanticError

#: A row is a mapping from lowercase column name to value.
Row = dict[str, object]

#: Supported column type names.
COLUMN_TYPES = ("string", "int", "float", "date")


@dataclass
class Table:
    """A named in-memory table with case-insensitive column access.

    Parameters
    ----------
    name:
        Table name as displayed (original casing preserved).
    columns:
        Column names in declaration order (original casing preserved).
    rows:
        Row dictionaries; keys may use any casing, normalized on insert.
    """

    name: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        lower = [c.lower() for c in self.columns]
        if len(set(lower)) != len(lower):
            raise SqlSemanticError(f"duplicate columns in table {self.name}")
        self._column_keys = lower
        self.rows = [self._normalize(row) for row in self.rows]

    def _normalize(self, row: Row) -> Row:
        normalized = {str(k).lower(): v for k, v in row.items()}
        missing = set(self._column_keys) - set(normalized)
        if missing:
            raise SqlSemanticError(
                f"row for {self.name} missing columns: {sorted(missing)}"
            )
        return {key: normalized[key] for key in self._column_keys}

    @property
    def column_keys(self) -> list[str]:
        """Lowercase column lookup keys, in declaration order."""
        return list(self._column_keys)

    def has_column(self, column: str) -> bool:
        return column.lower() in self._column_keys

    def display_name(self, column: str) -> str:
        """Original-cased column name for a lookup key."""
        idx = self._column_keys.index(column.lower())
        return self.columns[idx]

    def insert(self, row: Row) -> None:
        """Append a row (validates column completeness)."""
        self.rows.append(self._normalize(row))

    def extend(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.insert(row)

    def column_values(self, column: str) -> list[object]:
        """All values of a column, in row order."""
        key = column.lower()
        if key not in self._column_keys:
            raise SqlSemanticError(f"no column {column!r} in {self.name}")
        return [row[key] for row in self.rows]

    def distinct_strings(self, column: str) -> list[str]:
        """Distinct string values of a column (used by the phonetic index)."""
        seen: dict[str, None] = {}
        for value in self.column_values(column):
            if isinstance(value, str):
                seen.setdefault(value)
        return list(seen)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)


def infer_column_type(values: Iterable[object]) -> str:
    """Infer a column type name from sample values."""
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return "int"
        if isinstance(value, datetime.date):
            return "date"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "float"
        return "string"
    return "string"
