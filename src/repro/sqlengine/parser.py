"""Recursive-descent parser for the supported SQL subset.

Grammar (runtime form — literals are concrete values, unlike the
placeholder structures of :mod:`repro.grammar`):

.. code-block:: text

    select_stmt := SELECT select_list FROM from_list [WHERE condition]
                   [GROUP BY colrefs] [ORDER BY colrefs] [LIMIT number]
    select_list := '*' | select_item (',' select_item)*
    select_item := (AVG|SUM|MAX|MIN|COUNT) '(' (colref|'*') ')' | colref
    from_list   := table (NATURAL JOIN table)* | table (',' table)*
    condition   := and_expr (OR and_expr)*
    and_expr    := predicate (AND predicate)*
    predicate   := operand ('='|'<'|'>') operand
                 | colref [NOT] BETWEEN literal AND literal
                 | colref IN '(' (literal (',' literal)* | select_stmt) ')'
    operand     := colref | literal
    colref      := identifier ['.' identifier]

One level of nesting is supported via ``IN (SELECT ...)``; a nested query
may not itself contain a subquery, matching the paper's supported subset.
"""

from __future__ import annotations

import datetime

from repro.errors import SqlSyntaxError
from repro.sqlengine.ast_nodes import (
    Aggregate,
    BetweenPredicate,
    BinaryCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    Literal,
    Operand,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sqlengine.lexer import SqlToken, SqlTokenKind, lex

_AGGREGATES = ("AVG", "SUM", "MAX", "MIN", "COUNT")


class _Parser:
    def __init__(self, tokens: list[SqlToken], depth: int = 0):
        self._tokens = tokens
        self._pos = 0
        self._depth = depth

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> SqlToken:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> SqlToken:
        token = self._tokens[self._pos]
        if token.kind is not SqlTokenKind.EOF:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> SqlToken:
        token = self._advance()
        if not token.matches(SqlTokenKind.KEYWORD, word):
            raise SqlSyntaxError(f"expected {word}, found {token.text!r}")
        return token

    def _expect_splchar(self, char: str) -> SqlToken:
        token = self._advance()
        if not token.matches(SqlTokenKind.SPLCHAR, char):
            raise SqlSyntaxError(f"expected {char!r}, found {token.text!r}")
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches(SqlTokenKind.KEYWORD, word):
            self._advance()
            return True
        return False

    def _accept_splchar(self, char: str) -> bool:
        if self._peek().matches(SqlTokenKind.SPLCHAR, char):
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse_statement(self, subquery: bool = False) -> SelectStatement:
        self._expect_keyword("SELECT")
        select_items = self._select_list()
        self._expect_keyword("FROM")
        tables, natural = self._from_list()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._condition()
        group_by = self._by_clause("GROUP")
        order_by = self._by_clause("ORDER")
        limit = self._limit_clause()
        if not subquery:
            trailing = self._peek()
            if trailing.kind is not SqlTokenKind.EOF:
                raise SqlSyntaxError(f"trailing input at {trailing.text!r}")
        return SelectStatement(
            select_items=tuple(select_items),
            from_tables=tuple(tables),
            natural_join=natural,
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
        )

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept_splchar(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token.matches(SqlTokenKind.SPLCHAR, "*"):
            self._advance()
            return Star()
        if token.kind is SqlTokenKind.KEYWORD and token.text in _AGGREGATES:
            func = self._advance().text
            self._expect_splchar("(")
            if self._accept_splchar("*"):
                argument: ColumnRef | Star = Star()
            else:
                argument = self._column_ref()
            self._expect_splchar(")")
            return Aggregate(func=func, argument=argument)
        return self._column_ref()

    def _from_list(self) -> tuple[list[TableRef], bool]:
        tables = [self._table_ref()]
        if self._peek().matches(SqlTokenKind.KEYWORD, "NATURAL"):
            while self._accept_keyword("NATURAL"):
                self._expect_keyword("JOIN")
                tables.append(self._table_ref())
            return tables, True
        while self._accept_splchar(","):
            tables.append(self._table_ref())
        return tables, False

    def _table_ref(self) -> TableRef:
        token = self._advance()
        if token.kind is not SqlTokenKind.IDENTIFIER:
            raise SqlSyntaxError(f"expected table name, found {token.text!r}")
        return TableRef(token.text)

    def _column_ref(self) -> ColumnRef:
        token = self._advance()
        if token.kind is not SqlTokenKind.IDENTIFIER:
            raise SqlSyntaxError(f"expected column name, found {token.text!r}")
        if self._accept_splchar("."):
            second = self._advance()
            if second.kind is not SqlTokenKind.IDENTIFIER:
                raise SqlSyntaxError(
                    f"expected column after '.', found {second.text!r}"
                )
            return ColumnRef(column=second.text, table=token.text)
        return ColumnRef(column=token.text)

    def _condition(self) -> Condition:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            right = self._and_expr()
            left = BinaryCondition(left, "OR", right)
        return left

    def _and_expr(self) -> Condition:
        left = self._predicate()
        while self._peek().matches(SqlTokenKind.KEYWORD, "AND"):
            # Do not consume the AND of a BETWEEN bound: _predicate handles
            # BETWEEN internally, so any AND seen here is a conjunction.
            self._advance()
            right = self._predicate()
            left = BinaryCondition(left, "AND", right)
        return left

    def _predicate(self) -> Condition:
        probe_token = self._peek()
        operand = self._operand()
        nxt = self._peek()
        if nxt.kind is SqlTokenKind.SPLCHAR and nxt.text in ("=", "<", ">"):
            op = self._advance().text
            right = self._operand()
            return Comparison(operand, op, right)
        if not isinstance(operand, ColumnRef):
            raise SqlSyntaxError(
                f"predicate starting at {probe_token.text!r} needs a column"
            )
        negated = self._accept_keyword("NOT")
        if self._accept_keyword("BETWEEN"):
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return BetweenPredicate(operand, low, high, negated=negated)
        if negated:
            raise SqlSyntaxError("NOT is only supported before BETWEEN")
        if self._accept_keyword("IN"):
            return self._in_predicate(operand)
        raise SqlSyntaxError(f"incomplete predicate after {operand.column!r}")

    def _in_predicate(self, probe: ColumnRef) -> InPredicate:
        self._expect_splchar("(")
        if self._peek().matches(SqlTokenKind.KEYWORD, "SELECT"):
            if self._depth >= 1:
                raise SqlSyntaxError("only one level of nesting is supported")
            sub = _Parser(self._tokens[self._pos :], depth=self._depth + 1)
            statement = sub.parse_statement(subquery=True)
            self._pos += sub._pos
            self._expect_splchar(")")
            return InPredicate(probe, subquery=statement)
        values = [self._literal()]
        while self._accept_splchar(","):
            values.append(self._literal())
        self._expect_splchar(")")
        return InPredicate(probe, values=tuple(values))

    def _operand(self) -> Operand:
        token = self._peek()
        if token.kind in (
            SqlTokenKind.STRING,
            SqlTokenKind.NUMBER,
            SqlTokenKind.DATE,
        ):
            return self._literal()
        if token.kind is SqlTokenKind.IDENTIFIER:
            return self._column_ref()
        raise SqlSyntaxError(f"expected operand, found {token.text!r}")

    def _literal(self) -> Literal:
        token = self._advance()
        if token.kind is SqlTokenKind.STRING:
            return Literal(str(token.value))
        if token.kind is SqlTokenKind.NUMBER:
            assert isinstance(token.value, (int, float))
            return Literal(token.value)
        if token.kind is SqlTokenKind.DATE:
            assert isinstance(token.value, datetime.date)
            return Literal(token.value)
        raise SqlSyntaxError(f"expected literal value, found {token.text!r}")

    def _by_clause(self, head: str) -> list[ColumnRef]:
        if not self._peek().matches(SqlTokenKind.KEYWORD, head):
            return []
        self._advance()
        self._expect_keyword("BY")
        cols = [self._column_ref()]
        while self._accept_splchar(","):
            cols.append(self._column_ref())
        return cols

    def _limit_clause(self) -> int | None:
        if not self._accept_keyword("LIMIT"):
            return None
        token = self._advance()
        if token.kind is not SqlTokenKind.NUMBER or not isinstance(
            token.value, int
        ):
            raise SqlSyntaxError(f"LIMIT needs an integer, found {token.text!r}")
        return token.value


def parse_select(text: str) -> SelectStatement:
    """Parse ``text`` into a :class:`SelectStatement`.

    Raises :class:`~repro.errors.SqlSyntaxError` when the text is outside
    the supported subset.
    """
    return _Parser(lex(text)).parse_statement()
