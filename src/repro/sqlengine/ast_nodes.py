"""Typed AST for the supported SQL subset."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Union

#: Python value types a SQL literal can carry.
SqlValue = Union[str, int, float, datetime.date]


@dataclass(frozen=True)
class Literal:
    """A constant value: string, number, or date."""

    value: SqlValue

    @property
    def is_string(self) -> bool:
        return isinstance(self.value, str)

    @property
    def is_number(self) -> bool:
        return isinstance(self.value, (int, float))

    @property
    def is_date(self) -> bool:
        return isinstance(self.value, datetime.date)


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    column: str
    table: str | None = None

    def key(self) -> str:
        """Case-insensitive lookup key."""
        return self.column.lower()


@dataclass(frozen=True)
class Star:
    """The ``*`` select item (or ``COUNT(*)`` argument)."""


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call, e.g. ``AVG(salary)`` or ``COUNT(*)``."""

    func: str  # AVG | SUM | MAX | MIN | COUNT
    argument: ColumnRef | Star

    def __post_init__(self) -> None:
        if self.func.upper() not in ("AVG", "SUM", "MAX", "MIN", "COUNT"):
            raise ValueError(f"unsupported aggregate: {self.func}")


#: Anything that can appear in the SELECT list.
SelectItem = Union[Star, ColumnRef, Aggregate]

#: Operand of a comparison.
Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """A binary comparison predicate ``left op right`` (op in = < >)."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in ("=", "<", ">"):
            raise ValueError(f"unsupported comparison operator: {self.op}")


@dataclass(frozen=True)
class BetweenPredicate:
    """``probe [NOT] BETWEEN low AND high``."""

    probe: ColumnRef
    low: Literal
    high: Literal
    negated: bool = False


@dataclass(frozen=True)
class InPredicate:
    """``probe IN (v1, v2, ...)`` or ``probe IN (SELECT ...)``."""

    probe: ColumnRef
    values: tuple[Literal, ...] = ()
    subquery: "SelectStatement | None" = None

    def __post_init__(self) -> None:
        if bool(self.values) == (self.subquery is not None):
            raise ValueError("InPredicate needs values xor a subquery")


@dataclass(frozen=True)
class BinaryCondition:
    """Boolean combination ``left AND/OR right``."""

    left: "Condition"
    op: str  # AND | OR
    right: "Condition"

    def __post_init__(self) -> None:
        if self.op not in ("AND", "OR"):
            raise ValueError(f"unsupported boolean operator: {self.op}")


Condition = Union[Comparison, BetweenPredicate, InPredicate, BinaryCondition]


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause."""

    name: str

    def key(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement of the supported subset.

    ``natural_join`` distinguishes ``FROM a NATURAL JOIN b`` (equi-join on
    shared column names) from ``FROM a, b`` (cross product filtered by
    WHERE predicates).
    """

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    natural_join: bool = False
    where: Condition | None = None
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[ColumnRef, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.select_items:
            raise ValueError("SELECT list must not be empty")
        if not self.from_tables:
            raise ValueError("FROM list must not be empty")

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.select_items)


def iter_conditions(condition: Condition | None):
    """Yield every leaf predicate of a condition tree, left-to-right."""
    if condition is None:
        return
    if isinstance(condition, BinaryCondition):
        yield from iter_conditions(condition.left)
        yield from iter_conditions(condition.right)
    else:
        yield condition


def statement_literals(stmt: SelectStatement) -> list[Literal]:
    """Collect every value literal in the statement, in syntactic order."""
    out: list[Literal] = []
    for pred in iter_conditions(stmt.where):
        if isinstance(pred, Comparison):
            for side in (pred.left, pred.right):
                if isinstance(side, Literal):
                    out.append(side)
        elif isinstance(pred, BetweenPredicate):
            out.extend([pred.low, pred.high])
        elif isinstance(pred, InPredicate):
            if pred.subquery is not None:
                out.extend(statement_literals(pred.subquery))
            else:
                out.extend(pred.values)
    if stmt.limit is not None:
        out.append(Literal(stmt.limit))
    return out
