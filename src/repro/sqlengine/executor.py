"""Query execution over in-memory tables.

Supports the paper's subset: select-project-join-aggregate queries with
natural joins, comma joins, WHERE conjunctions/disjunctions, BETWEEN and
IN predicates (including one-level nested subqueries), GROUP BY, ORDER BY,
and LIMIT.

Semantics notes:

- Natural join equi-joins on all shared column names (as in the paper's
  Employees queries, which natural-join on ``EmployeeNumber``).
- Comparison between incompatible types (e.g. a string against a number)
  evaluates to False instead of raising: SpeakQL-predicted queries can
  carry mistranscribed values and execution accuracy treats such queries
  as returning a (wrong) result rather than crashing the harness.
- With GROUP BY, non-aggregate select items are evaluated on the first
  row of each group (MySQL-style permissiveness); ORDER BY sorts groups
  by their key when possible, otherwise by first-row values.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from itertools import product

from repro.errors import ExecutionError, SqlSemanticError
from repro.sqlengine.ast_nodes import (
    Aggregate,
    BetweenPredicate,
    BinaryCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    Literal,
    Operand,
    SelectStatement,
    Star,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.table import Row, Table


@dataclass
class ResultSet:
    """Execution output: column headers plus row tuples."""

    columns: list[str]
    rows: list[tuple]

    def as_multiset(self) -> dict[tuple, int]:
        """Bag view used for execution-accuracy comparison."""
        bag: dict[tuple, int] = {}
        for row in self.rows:
            bag[row] = bag.get(row, 0) + 1
        return bag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.as_multiset() == other.as_multiset()

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _Env:
    """A joined row: per-table sub-rows, with column resolution."""

    tables: dict[str, Row]  # table key -> row

    def resolve(self, ref: ColumnRef) -> object:
        column = ref.key()
        if ref.table is not None:
            table_key = ref.table.lower()
            if table_key not in self.tables:
                raise SqlSemanticError(f"unknown table alias {ref.table!r}")
            row = self.tables[table_key]
            if column not in row:
                raise SqlSemanticError(
                    f"no column {ref.column!r} in {ref.table!r}"
                )
            return row[column]
        hits = [row[column] for row in self.tables.values() if column in row]
        if not hits:
            raise SqlSemanticError(f"unknown column {ref.column!r}")
        # In a natural join, shared columns are equal by construction, so
        # any hit works; in a comma join an ambiguous bare name resolves to
        # the first table, matching the permissive display-oriented engine.
        return hits[0]


#: Safety cap on intermediate join size; realistic for the in-memory
#: engine and prevents mistranscribed queries from exploding the harness.
MAX_JOIN_ROWS = 1_000_000


def execute(stmt: SelectStatement, catalog: Catalog) -> ResultSet:
    """Execute ``stmt`` against ``catalog`` and return its result set."""
    tables = [catalog.table(ref.name) for ref in stmt.from_tables]
    conjuncts = _conjuncts(stmt.where)
    envs, applied = _join(tables, natural=stmt.natural_join, conjuncts=conjuncts)
    remaining = [c for c in conjuncts if id(c) not in applied]
    if stmt.where is not None:
        if conjuncts:
            envs = [
                env
                for env in envs
                if all(_eval_condition(c, env, catalog) for c in remaining)
            ]
        else:
            envs = [
                env for env in envs if _eval_condition(stmt.where, env, catalog)
            ]
    if stmt.group_by or stmt.has_aggregates:
        result = _execute_grouped(stmt, envs)
    else:
        result = _execute_plain(stmt, envs, tables)
    if stmt.limit is not None:
        result.rows = result.rows[: max(stmt.limit, 0)]
    return result


# -- joins ----------------------------------------------------------------


def _conjuncts(condition: Condition | None) -> list[Condition]:
    """Top-level AND conjuncts of a condition (empty for OR trees)."""
    if condition is None:
        return []
    if isinstance(condition, BinaryCondition):
        if condition.op != "AND":
            return []
        left = _conjuncts(condition.left)
        right = _conjuncts(condition.right)
        if not left or not right:
            return []
        return left + right
    return [condition]


def _join(
    tables: list[Table], natural: bool, conjuncts: list[Condition]
) -> tuple[list[_Env], set[int]]:
    """Join tables left-to-right with predicate pushdown.

    Single-table conjuncts filter a table's rows before it joins;
    cross-table equality conjuncts become hash joins.  Returns the joined
    envs plus the ids of conjuncts already applied.
    """
    applied: set[int] = set()
    joined_tables: list[Table] = [tables[0]]
    rows = _filtered_rows(tables[0], conjuncts, applied)
    envs = [_Env({tables[0].name.lower(): row}) for row in rows]
    for table in tables[1:]:
        key = table.name.lower()
        rows = _filtered_rows(table, conjuncts, applied)
        if natural:
            shared = _shared_columns(envs, table)
            index = _build_index_rows(rows, shared)
            joined: list[_Env] = []
            for env in envs:
                probe = tuple(env.resolve(ColumnRef(c)) for c in shared)
                for row in index.get(probe, []):
                    joined.append(_Env({**env.tables, key: row}))
                    _check_join_cap(joined)
        else:
            equi = _equi_join_conjuncts(conjuncts, joined_tables, table, applied)
            if equi:
                joined = _hash_join(envs, rows, key, equi)
            else:
                joined = []
                for env, row in product(envs, rows):
                    joined.append(_Env({**env.tables, key: row}))
                    _check_join_cap(joined)
        envs = joined
        joined_tables.append(table)
    return envs, applied


def _check_join_cap(joined: list[_Env]) -> None:
    if len(joined) > MAX_JOIN_ROWS:
        raise ExecutionError(
            f"intermediate join exceeds {MAX_JOIN_ROWS} rows"
        )


def _filtered_rows(
    table: Table, conjuncts: list[Condition], applied: set[int]
) -> list[Row]:
    """Apply single-table conjuncts to ``table`` before joining."""
    predicates = []
    for conjunct in conjuncts:
        if id(conjunct) in applied:
            continue
        if _is_single_table(conjunct, table):
            predicates.append(conjunct)
            applied.add(id(conjunct))
    if not predicates:
        return table.rows
    out = []
    for row in table.rows:
        env = _Env({table.name.lower(): row})
        if all(_eval_condition(p, env, _EMPTY_CATALOG) for p in predicates):
            out.append(row)
    return out


def _is_single_table(condition: Condition, table: Table) -> bool:
    """True if every column the predicate touches lives in ``table`` only.

    Subquery predicates are never pushed down (they need the catalog).
    """
    if isinstance(condition, InPredicate) and condition.subquery is not None:
        return False
    refs = _column_refs(condition)
    if not refs:
        return False
    for ref in refs:
        if ref.table is not None and ref.table.lower() != table.name.lower():
            return False
        if not table.has_column(ref.column):
            return False
    return True


def _column_refs(condition: Condition) -> list[ColumnRef]:
    if isinstance(condition, Comparison):
        return [s for s in (condition.left, condition.right) if isinstance(s, ColumnRef)]
    if isinstance(condition, BetweenPredicate):
        return [condition.probe]
    if isinstance(condition, InPredicate):
        return [condition.probe]
    if isinstance(condition, BinaryCondition):
        return _column_refs(condition.left) + _column_refs(condition.right)
    return []


def _equi_join_conjuncts(
    conjuncts: list[Condition],
    joined_tables: list[Table],
    new_table: Table,
    applied: set[int],
) -> list[tuple[ColumnRef, ColumnRef]]:
    """Equality conjuncts linking already-joined tables to ``new_table``.

    Returns (probe-on-joined-side, key-on-new-table) pairs and marks the
    conjuncts applied.
    """
    joined_names = {t.name.lower() for t in joined_tables}
    pairs: list[tuple[ColumnRef, ColumnRef]] = []
    for conjunct in conjuncts:
        if id(conjunct) in applied or not isinstance(conjunct, Comparison):
            continue
        if conjunct.op != "=":
            continue
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            continue
        sides = {}
        for ref in (left, right):
            owner = _owner_of(ref, joined_tables, new_table)
            if owner is None:
                sides = {}
                break
            sides[id(ref)] = owner
        if not sides:
            continue
        left_owner, right_owner = sides[id(left)], sides[id(right)]
        new_name = new_table.name.lower()
        if left_owner in joined_names and right_owner == new_name:
            pairs.append((left, right))
            applied.add(id(conjunct))
        elif right_owner in joined_names and left_owner == new_name:
            pairs.append((right, left))
            applied.add(id(conjunct))
    return pairs


def _owner_of(
    ref: ColumnRef, joined_tables: list[Table], new_table: Table
) -> str | None:
    if ref.table is not None:
        name = ref.table.lower()
        for table in joined_tables + [new_table]:
            if table.name.lower() == name and table.has_column(ref.column):
                return name
        return None
    owners = [
        t.name.lower()
        for t in joined_tables + [new_table]
        if t.has_column(ref.column)
    ]
    return owners[0] if len(owners) == 1 else None


def _hash_join(
    envs: list[_Env],
    rows: list[Row],
    key: str,
    equi: list[tuple[ColumnRef, ColumnRef]],
) -> list[_Env]:
    new_side_cols = [pair[1].key() for pair in equi]
    index = _build_index_rows(rows, new_side_cols)
    joined: list[_Env] = []
    for env in envs:
        probe = tuple(env.resolve(pair[0]) for pair in equi)
        for row in index.get(probe, []):
            joined.append(_Env({**env.tables, key: row}))
            _check_join_cap(joined)
    return joined


def _shared_columns(envs: list[_Env], table: Table) -> list[str]:
    existing: set[str] = set()
    if envs:
        for row in envs[0].tables.values():
            existing |= set(row)
    else:
        return []
    return [c for c in table.column_keys if c in existing]


def _build_index_rows(rows: list[Row], cols: list[str]) -> dict[tuple, list[Row]]:
    index: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row[c] for c in cols)
        index.setdefault(key, []).append(row)
    return index


#: Catalog stub used when evaluating pushed-down single-table predicates
#: (they never contain subqueries, so the catalog is never consulted).
_EMPTY_CATALOG = Catalog("__pushdown__")


# -- evaluation -----------------------------------------------------------


def _eval_condition(condition: Condition, env: _Env, catalog: Catalog) -> bool:
    if isinstance(condition, BinaryCondition):
        left = _eval_condition(condition.left, env, catalog)
        if condition.op == "AND":
            return left and _eval_condition(condition.right, env, catalog)
        return left or _eval_condition(condition.right, env, catalog)
    if isinstance(condition, Comparison):
        left = _eval_operand(condition.left, env)
        right = _eval_operand(condition.right, env)
        return _compare(left, condition.op, right)
    if isinstance(condition, BetweenPredicate):
        value = env.resolve(condition.probe)
        low, high = condition.low.value, condition.high.value
        inside = _compare(value, ">", low) or _compare(value, "=", low)
        inside = inside and (
            _compare(value, "<", high) or _compare(value, "=", high)
        )
        return inside != condition.negated
    if isinstance(condition, InPredicate):
        value = env.resolve(condition.probe)
        if condition.subquery is not None:
            sub = execute(condition.subquery, catalog)
            members = {row[0] for row in sub.rows if len(row) >= 1}
        else:
            members = {v.value for v in condition.values}
        return any(_compare(value, "=", member) for member in members)
    raise TypeError(f"unknown condition node: {condition!r}")


def _eval_operand(operand: Operand, env: _Env) -> object:
    if isinstance(operand, Literal):
        return operand.value
    return env.resolve(operand)


def _coerce_pair(left: object, right: object) -> tuple[object, object] | None:
    """Bring two values to a comparable pair, or None if incomparable."""
    if isinstance(left, bool) or isinstance(right, bool):
        return None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    # date vs ISO-looking string
    if isinstance(left, datetime.date) and isinstance(right, str):
        parsed = _try_date(right)
        return (left, parsed) if parsed else None
    if isinstance(right, datetime.date) and isinstance(left, str):
        parsed = _try_date(left)
        return (parsed, right) if parsed else None
    # number vs numeric string
    if isinstance(left, (int, float)) and isinstance(right, str):
        parsed = _try_number(right)
        return (left, parsed) if parsed is not None else None
    if isinstance(right, (int, float)) and isinstance(left, str):
        parsed = _try_number(left)
        return (parsed, right) if parsed is not None else None
    return None


def _compare(left: object, op: str, right: object) -> bool:
    if left is None or right is None:
        return False
    pair = _coerce_pair(left, right)
    if pair is None:
        return False
    lhs, rhs = pair
    if op == "=":
        return lhs == rhs
    if op == "<":
        return lhs < rhs  # type: ignore[operator]
    if op == ">":
        return lhs > rhs  # type: ignore[operator]
    raise SqlSemanticError(f"unsupported operator {op!r}")


def _try_date(text: str) -> datetime.date | None:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        return None


def _try_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


# -- projection -----------------------------------------------------------


def _expand_star(tables: list[Table]) -> list[ColumnRef]:
    refs: list[ColumnRef] = []
    seen: set[str] = set()
    for table in tables:
        for column in table.columns:
            if column.lower() in seen:
                continue
            seen.add(column.lower())
            refs.append(ColumnRef(column))
    return refs


def _execute_plain(
    stmt: SelectStatement, envs: list[_Env], tables: list[Table]
) -> ResultSet:
    items: list[ColumnRef] = []
    for item in stmt.select_items:
        if isinstance(item, Star):
            items.extend(_expand_star(tables))
        elif isinstance(item, ColumnRef):
            items.append(item)
        else:  # pragma: no cover - guarded by has_aggregates
            raise AssertionError("aggregate in plain execution")
    if stmt.order_by:
        envs = sorted(
            envs,
            key=lambda env: tuple(
                _sort_key(env.resolve(ref)) for ref in stmt.order_by
            ),
        )
    rows = [tuple(env.resolve(ref) for ref in items) for env in envs]
    return ResultSet(columns=[_header(ref) for ref in items], rows=rows)


def _execute_grouped(stmt: SelectStatement, envs: list[_Env]) -> ResultSet:
    groups: dict[tuple, list[_Env]] = {}
    if stmt.group_by:
        for env in envs:
            key = tuple(env.resolve(ref) for ref in stmt.group_by)
            groups.setdefault(key, []).append(env)
    else:
        groups[()] = envs

    headers: list[str] = []
    for item in stmt.select_items:
        if isinstance(item, Aggregate):
            arg = "*" if isinstance(item.argument, Star) else item.argument.column
            headers.append(f"{item.func.upper()}({arg})")
        elif isinstance(item, ColumnRef):
            headers.append(_header(item))
        else:
            raise SqlSemanticError("SELECT * cannot be combined with GROUP BY")

    out_rows: list[tuple[tuple, tuple]] = []  # (sort key, row)
    for key, members in groups.items():
        row = []
        for item in stmt.select_items:
            if isinstance(item, Aggregate):
                row.append(_eval_aggregate(item, members))
            else:
                assert isinstance(item, ColumnRef)
                row.append(members[0].resolve(item) if members else None)
        sort_key = _group_sort_key(stmt, key, members)
        out_rows.append((sort_key, tuple(row)))

    if stmt.order_by:
        out_rows.sort(key=lambda pair: pair[0])
    return ResultSet(columns=headers, rows=[row for _, row in out_rows])


def _group_sort_key(stmt: SelectStatement, key: tuple, members: list[_Env]) -> tuple:
    if not stmt.order_by:
        return ()
    parts = []
    group_cols = [ref.key() for ref in stmt.group_by]
    for ref in stmt.order_by:
        if ref.key() in group_cols:
            parts.append(_sort_key(key[group_cols.index(ref.key())]))
        elif members:
            parts.append(_sort_key(members[0].resolve(ref)))
        else:
            parts.append(_sort_key(None))
    return tuple(parts)


def _eval_aggregate(agg: Aggregate, members: list[_Env]) -> object:
    func = agg.func.upper()
    if isinstance(agg.argument, Star):
        if func != "COUNT":
            raise SqlSemanticError(f"{func}(*) is not supported")
        return len(members)
    values = [env.resolve(agg.argument) for env in members]
    values = [v for v in values if v is not None]
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func in ("SUM", "AVG") and not all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
    ):
        raise ExecutionError(f"{func} over non-numeric column")
    if func == "SUM":
        return sum(values)  # type: ignore[arg-type]
    if func == "AVG":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if func == "MAX":
        return max(values, key=_sort_key)
    if func == "MIN":
        return min(values, key=_sort_key)
    raise SqlSemanticError(f"unsupported aggregate {func}")


def _sort_key(value: object) -> tuple:
    """Total order over heterogeneous values: rank by type, then value."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, datetime.date):
        return (2, value.toordinal())
    return (3, str(value))


def _header(ref: ColumnRef) -> str:
    return f"{ref.table}.{ref.column}" if ref.table else ref.column
