"""Lexer for the supported SQL subset."""

from __future__ import annotations

import datetime
import enum
import re
from dataclasses import dataclass

from repro.errors import SqlSyntaxError
from repro.grammar.vocabulary import KEYWORD_DICT, SPLCHAR_DICT


class SqlTokenKind(enum.Enum):
    KEYWORD = "keyword"
    SPLCHAR = "splchar"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    DATE = "date"
    EOF = "eof"


@dataclass(frozen=True)
class SqlToken:
    kind: SqlTokenKind
    text: str
    value: object = None
    position: int = 0

    def matches(self, kind: SqlTokenKind, text: str | None = None) -> bool:
        if self.kind is not kind:
            return False
        if text is None:
            return True
        if kind is SqlTokenKind.KEYWORD:
            return self.text.upper() == text.upper()
        return self.text == text


_LEX_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<date>\d{4}-\d{2}-\d{2})
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<word>[A-Za-z_][\w$#-]*)
  | (?P<splchar>[*=<>().,])
    """,
    re.VERBOSE,
)


class Lexer:
    """Tokenizes SQL text of the supported subset.

    Dates must be ISO ``YYYY-MM-DD`` (unquoted or quoted); quoted strings
    that look like ISO dates are lexed as dates, matching how the paper's
    dataset renders date attribute values.
    """

    def __init__(self, text: str):
        self.text = text

    def tokens(self) -> list[SqlToken]:
        out: list[SqlToken] = []
        pos = 0
        n = len(self.text)
        while pos < n:
            match = _LEX_RE.match(self.text, pos)
            if match is None:
                raise SqlSyntaxError(
                    f"unexpected character {self.text[pos]!r} at offset {pos}"
                )
            pos = match.end()
            if match.lastgroup == "ws":
                continue
            out.append(self._token_from(match))
        out.append(SqlToken(SqlTokenKind.EOF, "", position=pos))
        return out

    def _token_from(self, match: re.Match) -> SqlToken:
        kind = match.lastgroup
        text = match.group(0)
        start = match.start()
        if kind == "string":
            inner = text[1:-1]
            date = _try_parse_date(inner)
            if date is not None:
                return SqlToken(SqlTokenKind.DATE, inner, date, start)
            return SqlToken(SqlTokenKind.STRING, inner, inner, start)
        if kind == "date":
            date = _try_parse_date(text)
            if date is None:
                raise SqlSyntaxError(f"invalid date {text!r} at offset {start}")
            return SqlToken(SqlTokenKind.DATE, text, date, start)
        if kind == "number":
            value: object = float(text) if "." in text else int(text)
            return SqlToken(SqlTokenKind.NUMBER, text, value, start)
        if kind == "word":
            if text.upper() in KEYWORD_DICT:
                return SqlToken(SqlTokenKind.KEYWORD, text.upper(), None, start)
            return SqlToken(SqlTokenKind.IDENTIFIER, text, text, start)
        if kind == "splchar":
            assert text in SPLCHAR_DICT
            return SqlToken(SqlTokenKind.SPLCHAR, text, None, start)
        raise AssertionError(f"unhandled lex group {kind}")  # pragma: no cover


def _try_parse_date(text: str) -> datetime.date | None:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        return None


def lex(text: str) -> list[SqlToken]:
    """Convenience wrapper: tokenize ``text``."""
    return Lexer(text).tokens()
