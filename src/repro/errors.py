"""Exception hierarchy for the SpeakQL reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class SqlSyntaxError(SqlError):
    """The query text does not belong to the supported SQL subset."""


class SqlSemanticError(SqlError):
    """The query references unknown tables/columns or mistypes values."""


class ExecutionError(SqlError):
    """The query failed during evaluation."""


class DatasetError(ReproError):
    """Dataset generation was asked for something unsatisfiable."""


class AsrError(ReproError):
    """Simulated speech pipeline failure."""


class DeadlineExceededError(ReproError):
    """A query ran past its deadline and was stopped between stages.

    ``stage`` names the boundary where the expiry was detected — the
    stage that was about to run (and never started).
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage
