"""Exception hierarchy for the SpeakQL reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class SqlSyntaxError(SqlError):
    """The query text does not belong to the supported SQL subset."""


class SqlSemanticError(SqlError):
    """The query references unknown tables/columns or mistypes values."""


class ExecutionError(SqlError):
    """The query failed during evaluation."""


class DatasetError(ReproError):
    """Dataset generation was asked for something unsatisfiable."""


class AsrError(ReproError):
    """Simulated speech pipeline failure."""


class ShardPoolError(ReproError):
    """The sharded search worker pool is unusable.

    Raised when the pool fails to start (a worker never reported ready)
    or when a search is attempted after the pool was stopped or every
    worker died.  Individual worker failures do *not* raise this — the
    coordinator degrades the sick shard alone and keeps answering.
    """


class DeadlineExceededError(ReproError):
    """A query ran past its deadline and was stopped between stages.

    ``stage`` names the boundary where the expiry was detected — the
    stage that was about to run (and never started).
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage
