"""Exception hierarchy for the SpeakQL reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class SqlSyntaxError(SqlError):
    """The query text does not belong to the supported SQL subset."""


class SqlSemanticError(SqlError):
    """The query references unknown tables/columns or mistypes values."""


class ExecutionError(SqlError):
    """The query failed during evaluation."""


class DatasetError(ReproError):
    """Dataset generation was asked for something unsatisfiable."""


class AsrError(ReproError):
    """Simulated speech pipeline failure."""


class ShardPoolError(ReproError):
    """The sharded search worker pool is unusable.

    Raised when the pool fails to start (a worker never reported ready)
    or when a search is attempted after the pool was stopped or every
    worker died.  Individual worker failures do *not* raise this — the
    coordinator degrades the sick shard alone and keeps answering.
    """


class BackendError(ReproError):
    """Base class for query-execution backend errors."""


class BackendUnavailableError(BackendError):
    """The requested execution backend's driver is not installed.

    Raised by :class:`~repro.execution.DuckDBBackend` when the optional
    ``duckdb`` package is absent; callers that can should degrade to the
    always-available SQLite backend.
    """


class BackendExecutionError(BackendError):
    """A query failed inside an execution backend.

    Covers engine-side parse errors, semantic errors (unknown table or
    column), and resource-cap violations (oversized result sets).  The
    scoring layer maps this to the ``invalid_sql`` verdict rather than
    crashing the harness: mistranscribed queries are data, not bugs.
    """


class BackendTimeoutError(BackendExecutionError):
    """A query ran past its per-query execution timeout and was killed."""


class DeadlineExceededError(ReproError):
    """A query ran past its deadline and was stopped between stages.

    ``stage`` names the boundary where the expiry was detected — the
    stage that was about to run (and never started).
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage
