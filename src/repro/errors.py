"""Exception hierarchy for the SpeakQL reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class SqlSyntaxError(SqlError):
    """The query text does not belong to the supported SQL subset."""


class SqlSemanticError(SqlError):
    """The query references unknown tables/columns or mistypes values."""


class ExecutionError(SqlError):
    """The query failed during evaluation."""


class DatasetError(ReproError):
    """Dataset generation was asked for something unsatisfiable."""


class AsrError(ReproError):
    """Simulated speech pipeline failure."""
