"""Deterministic resilience primitives shared across layers.

:class:`CircuitBreaker` started life inside the serving runtime (per
degradation-ladder rung); the sharded search executor
(:mod:`repro.core.shards`) now runs one per shard as well, so the
primitive lives here, dependency-free, and both layers import it.  The
serving package re-exports everything for backwards compatibility.
"""

from __future__ import annotations

import threading

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (exported as
#: ``speakql_serving_breaker_state`` and ``speakql_shard_state``).
BREAKER_STATE_VALUES = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


class CircuitBreaker:
    """A deterministic, request-count-based circuit breaker.

    One breaker instance tracks any number of keys (the serving runtime
    uses ladder-rung names; the sharded executor uses shard indexes).
    Per key:

    - **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    - **open** — :meth:`allow` refuses (the caller routes around the
      key) and counts down; after ``cooldown_requests`` refusals the
      next request becomes the half-open trial.
    - **half-open** — exactly one trial request is allowed; its success
      closes the breaker, its failure re-opens it for a fresh cooldown.

    The cooldown counts *requests that consulted the breaker*, not
    seconds, so state transitions are reproducible under test.  All
    methods are thread-safe.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_requests: int = 8
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_requests < 1:
            raise ValueError("cooldown_requests must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_requests = cooldown_requests
        self._lock = threading.Lock()
        self._state: dict[str, str] = {}
        self._failures: dict[str, int] = {}
        self._cooldown: dict[str, int] = {}
        self._trips: dict[str, int] = {}

    def state(self, key: str) -> str:
        with self._lock:
            return self._state.get(key, BREAKER_CLOSED)

    def trips(self, key: str) -> int:
        with self._lock:
            return self._trips.get(key, 0)

    def states(self) -> dict[str, str]:
        """A snapshot of every key's state (for health reporting)."""
        with self._lock:
            return dict(self._state)

    def allow(self, key: str) -> bool:
        """Whether a request may use ``key`` right now.

        Consulting an open key counts against its cooldown; the call
        that exhausts the cooldown flips the key to half-open and is
        itself allowed (it is the trial).
        """
        with self._lock:
            state = self._state.get(key, BREAKER_CLOSED)
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN:
                # A trial is already in flight; refuse concurrent ones.
                return False
            remaining = self._cooldown.get(key, 0) - 1
            if remaining > 0:
                self._cooldown[key] = remaining
                return False
            self._state[key] = BREAKER_HALF_OPEN
            return True

    def record_success(self, key: str) -> None:
        with self._lock:
            self._state[key] = BREAKER_CLOSED
            self._failures[key] = 0

    def record_failure(self, key: str) -> bool:
        """Record a failure; returns ``True`` when this call trips open."""
        with self._lock:
            state = self._state.get(key, BREAKER_CLOSED)
            if state == BREAKER_HALF_OPEN:
                # The trial failed: straight back to open.
                self._state[key] = BREAKER_OPEN
                self._cooldown[key] = self.cooldown_requests
                self._trips[key] = self._trips.get(key, 0) + 1
                return True
            failures = self._failures.get(key, 0) + 1
            self._failures[key] = failures
            if state == BREAKER_CLOSED and failures >= self.failure_threshold:
                self._state[key] = BREAKER_OPEN
                self._cooldown[key] = self.cooldown_requests
                self._trips[key] = self._trips.get(key, 0) + 1
                return True
            return False


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_VALUES",
    "CircuitBreaker",
]
