"""Execution-accuracy scoring: run gold and predicted SQL, compare answers.

This is the Table 5 measurement the string-match score approximates:
a recovered query counts as correct when it *executes to the same
result* as the gold query on a real database.  String match both
under-counts (aliasing, predicate reordering, equivalent literals) and
over-counts nothing — so on clean inputs execution accuracy is always
at least the string-match accuracy, an invariant the CI execution-smoke
asserts.

Every scored query lands in exactly one verdict:

- ``match`` — predicted SQL executed and returned the gold answer.
- ``mismatch`` — predicted SQL executed but returned a different
  answer (*wrong-but-executable*; see the forensics 6-class taxonomy).
- ``invalid_sql`` — the engine rejected the predicted SQL (parse or
  semantic error) or it blew the result-size cap.
- ``timeout`` — the predicted SQL ran past the per-query execution
  timeout and was killed.
- ``gold_error`` — the *gold* SQL failed, which is a harness bug, not
  a pipeline miss; scored separately so it can never inflate accuracy.

Observability: each scored query opens an ``execution.run`` span and
feeds the ``speakql_execution_*`` metrics (catalogued in
:mod:`repro.observability.names`, documented in
``docs/observability.md``).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from repro.errors import BackendExecutionError, BackendTimeoutError
from repro.execution.backend import ExecutionBackend, ExecutionResult
from repro.execution.comparison import compare_results
from repro.grammar.vocabulary import normalize_token, tokenize_sql
from repro.observability import names as obs_names
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer
from repro.sqlengine.catalog import Catalog

#: Default per-query execution timeout (wall seconds).  Generous for
#: queries our instances can produce, tight enough that a mistranscribed
#: cross product cannot stall a benchmark.
DEFAULT_TIMEOUT = 5.0

#: The closed verdict set (see module docstring).
VERDICTS = ("match", "mismatch", "invalid_sql", "timeout", "gold_error")

_ORDER_BY = re.compile(r"\border\s+by\b", re.IGNORECASE)


def string_match(gold_sql: str, predicted_sql: str) -> bool:
    """Token-normalized string equality — the pre-execution score.

    Uses the same normalization as the forensics attribution engine so
    "string-match accuracy" means the same thing in every report.
    """
    return [normalize_token(t) for t in tokenize_sql(predicted_sql)] == [
        normalize_token(t) for t in tokenize_sql(gold_sql)
    ]


def has_order_by(sql: str) -> bool:
    """Whether the query's result order is semantically meaningful."""
    return bool(_ORDER_BY.search(sql))


@dataclass(frozen=True)
class ExecutionScore:
    """The verdict for one (gold, predicted) pair."""

    verdict: str
    string_match: bool
    gold_rows: int = 0
    predicted_rows: int = 0
    reason: str = ""
    seconds: float = 0.0

    @property
    def execution_match(self) -> bool:
        return self.verdict == "match"


@dataclass
class ExecutionSummary:
    """Aggregate of a scored batch: both accuracies plus verdict counts."""

    engine: str
    total: int = 0
    string_matches: int = 0
    verdicts: dict[str, int] = field(
        default_factory=lambda: {verdict: 0 for verdict in VERDICTS}
    )
    scores: list[ExecutionScore] = field(default_factory=list)

    @property
    def execution_matches(self) -> int:
        return self.verdicts["match"]

    @property
    def string_accuracy(self) -> float:
        return self.string_matches / self.total if self.total else 0.0

    @property
    def execution_accuracy(self) -> float:
        return self.execution_matches / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "total": self.total,
            "string_matches": self.string_matches,
            "execution_matches": self.execution_matches,
            "string_accuracy": self.string_accuracy,
            "execution_accuracy": self.execution_accuracy,
            "verdicts": dict(self.verdicts),
        }


class ExecutionScorer:
    """Scores (gold, predicted) SQL pairs against one loaded backend.

    The backend is connected and the catalog loaded at construction;
    gold results are cached per gold-SQL text, so scoring N pipeline
    outputs against the same 12 study queries executes each gold query
    once.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        catalog: Catalog,
        *,
        timeout: float | None = DEFAULT_TIMEOUT,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.backend = backend
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics
        self._gold_cache: dict[str, ExecutionResult | BackendExecutionError] = {}
        backend.connect()
        backend.load_catalog(catalog)

    def __enter__(self) -> "ExecutionScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.backend.close()

    # -- execution ---------------------------------------------------------

    def executable(self, sql: str) -> bool:
        """Whether ``sql`` runs to completion on this backend.

        The predicate behind the forensics ``invalid_sql`` attribution
        class: timeouts count as not executable.
        """
        try:
            self.backend.execute(sql, timeout=self.timeout)
        except BackendExecutionError:
            return False
        return True

    def _gold_result(self, gold_sql: str) -> ExecutionResult:
        cached = self._gold_cache.get(gold_sql)
        if cached is None:
            try:
                cached = self.backend.execute(gold_sql, timeout=self.timeout)
            except BackendExecutionError as error:
                cached = error
            self._gold_cache[gold_sql] = cached
        if isinstance(cached, BackendExecutionError):
            raise cached
        return cached

    def score(self, gold_sql: str, predicted_sql: str) -> ExecutionScore:
        """Score one pair; never raises for pipeline output, only counts.

        A failing *gold* query is the exception to "never raises" in
        spirit: it yields the ``gold_error`` verdict, which benchmark
        assertions treat as a harness bug.
        """
        started = time.perf_counter()
        with self.tracer.span(
            "execution.run", engine=self.backend.name
        ) as span:
            matched_string = string_match(gold_sql, predicted_sql)
            verdict, reason, gold_rows, predicted_rows = self._run_pair(
                gold_sql, predicted_sql
            )
            span.set("verdict", verdict)
            elapsed = time.perf_counter() - started
        score = ExecutionScore(
            verdict=verdict,
            string_match=matched_string,
            gold_rows=gold_rows,
            predicted_rows=predicted_rows,
            reason=reason,
            seconds=elapsed,
        )
        self._publish(score)
        return score

    def _run_pair(
        self, gold_sql: str, predicted_sql: str
    ) -> tuple[str, str, int, int]:
        try:
            gold = self._gold_result(gold_sql)
        except BackendExecutionError as error:
            return "gold_error", f"gold query failed: {error}", 0, 0
        try:
            predicted = self.backend.execute(predicted_sql, timeout=self.timeout)
        except BackendTimeoutError as error:
            return "timeout", str(error), len(gold), 0
        except BackendExecutionError as error:
            return "invalid_sql", str(error), len(gold), 0
        outcome = compare_results(
            gold, predicted, ordered=has_order_by(gold_sql)
        )
        verdict = "match" if outcome.equal else "mismatch"
        return verdict, outcome.reason, len(gold), len(predicted)

    def _publish(self, score: ExecutionScore) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            obs_names.EXECUTION_QUERIES_TOTAL, engine=self.backend.name
        ).inc()
        self.metrics.counter(
            obs_names.EXECUTION_VERDICTS_TOTAL, verdict=score.verdict
        ).inc()
        self.metrics.histogram(
            obs_names.EXECUTION_SECONDS, engine=self.backend.name
        ).observe(score.seconds)

    # -- batches -----------------------------------------------------------

    def score_batch(
        self, pairs: list[tuple[str, str]]
    ) -> ExecutionSummary:
        """Score ``[(gold_sql, predicted_sql), ...]`` into a summary."""
        summary = ExecutionSummary(engine=self.backend.name)
        for gold_sql, predicted_sql in pairs:
            score = self.score(gold_sql, predicted_sql)
            summary.total += 1
            summary.string_matches += int(score.string_match)
            summary.verdicts[score.verdict] += 1
            summary.scores.append(score)
        return summary


def score_execution(
    pairs: list[tuple[str, str]],
    *,
    engine: str = "sqlite",
    schema: str = "employees",
    seed: int | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    catalog: Catalog | None = None,
) -> ExecutionSummary:
    """One-call execution scoring: build instance, load engine, score.

    ``engine`` names a registered backend (``sqlite``, ``duckdb``);
    ``catalog`` overrides the default synthetic instance for callers
    that already built one.  This is the `score_execution` path the
    study/benchmark code uses alongside string match.
    """
    from repro.execution import backend_for
    from repro.execution.instances import build_instance_catalog

    if catalog is None:
        catalog = build_instance_catalog(schema, seed=seed)
    backend = backend_for(engine)
    with ExecutionScorer(
        backend,
        catalog,
        timeout=timeout,
        tracer=tracer,
        metrics=metrics,
    ) as scorer:
        return scorer.score_batch(pairs)
