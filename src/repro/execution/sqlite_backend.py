"""SQLite execution backend — stdlib, always available.

This is the default engine for execution-accuracy scoring: every
Python install has :mod:`sqlite3`, so the Table 5 benchmark and the
CI execution-smoke never need optional dependencies.

Timeouts use SQLite's progress handler: the handler runs every
:data:`PROGRESS_OPCODES` virtual-machine opcodes and aborts the query
once the wall-clock budget is spent, which surfaces as an
``interrupted`` OperationalError we re-raise as
:class:`~repro.errors.BackendTimeoutError`.

``dump()`` exposes ``iterdump()`` output so the round-trip tests can
assert that the same catalog + seed loads to a byte-identical database.
"""

from __future__ import annotations

import sqlite3
import time

from repro.errors import BackendExecutionError, BackendTimeoutError
from repro.execution.backend import ExecutionBackend, ExecutionResult

#: VM opcodes between progress-handler invocations.  Small enough to
#: bound timeout overshoot to well under a millisecond on any query our
#: instances can produce, large enough to keep handler overhead trivial.
PROGRESS_OPCODES = 1000


class SQLiteBackend(ExecutionBackend):
    """In-memory SQLite session implementing :class:`ExecutionBackend`."""

    name = "sqlite"

    def __init__(self) -> None:
        self._conn: sqlite3.Connection | None = None

    def connect(self) -> None:
        if self._conn is None:
            self._conn = sqlite3.connect(":memory:")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise BackendExecutionError("backend is not connected")
        return self._conn

    def _run_statement(self, sql: str, rows: list[tuple] | None = None) -> None:
        try:
            if rows is None:
                self.connection.execute(sql)
            else:
                self.connection.executemany(sql, rows)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise BackendExecutionError(f"sqlite: {exc}") from exc

    def _run_query(self, sql: str, timeout: float | None) -> ExecutionResult:
        conn = self.connection
        deadline = None if timeout is None else time.monotonic() + timeout

        def watchdog() -> int:
            # Non-zero return tells SQLite to abort the running query.
            return 1 if time.monotonic() >= deadline else 0

        if deadline is not None:
            conn.set_progress_handler(watchdog, PROGRESS_OPCODES)
        try:
            cursor = conn.execute(sql)
            rows = cursor.fetchmany(self.max_rows + 1)
            if len(rows) > self.max_rows:
                raise self._overflow()
            columns = (
                [d[0] for d in cursor.description] if cursor.description else []
            )
            return ExecutionResult(columns=columns, rows=[tuple(r) for r in rows])
        except sqlite3.OperationalError as exc:
            if "interrupted" in str(exc):
                raise BackendTimeoutError(
                    f"query exceeded {timeout:.3f}s execution timeout"
                ) from exc
            raise BackendExecutionError(f"sqlite: {exc}") from exc
        except sqlite3.Error as exc:
            raise BackendExecutionError(f"sqlite: {exc}") from exc
        finally:
            if deadline is not None:
                conn.set_progress_handler(None, 0)

    def dump(self) -> str:
        """The full SQL dump of the session (``iterdump()`` text).

        A deterministic function of the loaded catalog: the round-trip
        tests compare dumps across loads to prove same seed →
        byte-identical database.
        """
        return "\n".join(self.connection.iterdump())
