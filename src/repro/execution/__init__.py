"""Pluggable query execution: real engines behind one backend interface.

The layer that turns "the recovered SQL looks right" into "the
recovered SQL *returns the right answer*" (the paper's Table 5
criterion).  See ``docs/execution.md`` for the guide.

- :mod:`~repro.execution.backend` — the :class:`ExecutionBackend`
  contract and :class:`ExecutionResult`.
- :mod:`~repro.execution.sqlite_backend` /
  :mod:`~repro.execution.duckdb_backend` — the stdlib engine and the
  optional, feature-gated one.
- :mod:`~repro.execution.comparison` — normalized result-set equality
  (order-insensitive, float-tolerant, NULL-aware).
- :mod:`~repro.execution.instances` — deterministic synthetic instances
  where every gold query returns a non-trivial result.
- :mod:`~repro.execution.scoring` — the ``score_execution`` path:
  verdicts, summaries, metrics, the ``execution.run`` span.
"""

from __future__ import annotations

from repro.errors import BackendUnavailableError
from repro.execution.backend import (
    ExecutionBackend,
    ExecutionResult,
)
from repro.execution.comparison import (
    ComparisonOutcome,
    compare_results,
    results_equal,
)
from repro.execution.duckdb_backend import DuckDBBackend
from repro.execution.instances import (
    build_instance_catalog,
    instance_fingerprint,
)
from repro.execution.scoring import (
    DEFAULT_TIMEOUT,
    ExecutionScore,
    ExecutionScorer,
    ExecutionSummary,
    VERDICTS,
    score_execution,
    string_match,
)
from repro.execution.sqlite_backend import SQLiteBackend

#: Registered backends, keyed by the name the CLI / benchmarks accept.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SQLiteBackend.name: SQLiteBackend,
    DuckDBBackend.name: DuckDBBackend,
}


def available_backends() -> list[str]:
    """Backend names whose drivers are importable right now."""
    return [name for name, cls in BACKENDS.items() if cls.is_available()]


def backend_for(name: str) -> ExecutionBackend:
    """Instantiate a backend by name.

    Raises :class:`~repro.errors.BackendUnavailableError` for a known
    backend whose driver is missing, ``ValueError`` for an unknown name.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return cls()


__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "ComparisonOutcome",
    "DEFAULT_TIMEOUT",
    "DuckDBBackend",
    "ExecutionBackend",
    "ExecutionResult",
    "ExecutionScore",
    "ExecutionScorer",
    "ExecutionSummary",
    "SQLiteBackend",
    "VERDICTS",
    "available_backends",
    "backend_for",
    "build_instance_catalog",
    "compare_results",
    "instance_fingerprint",
    "results_equal",
    "score_execution",
    "string_match",
]
