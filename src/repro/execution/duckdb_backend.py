"""DuckDB execution backend — optional, feature-gated.

DuckDB is *not* a dependency of this project.  When the ``duckdb``
package is importable this backend offers a second real engine so the
parity suite can prove our comparison semantics are engine-independent;
when it is absent, :meth:`DuckDBBackend.is_available` returns ``False``
and construction raises
:class:`~repro.errors.BackendUnavailableError` — callers degrade to
:class:`~repro.execution.sqlite_backend.SQLiteBackend`.

Timeouts use a watchdog :class:`threading.Timer` calling
``connection.interrupt()``; the interrupted query surfaces as a DuckDB
InterruptException we re-raise as
:class:`~repro.errors.BackendTimeoutError`.
"""

from __future__ import annotations

import importlib.util
import threading

from repro.errors import (
    BackendExecutionError,
    BackendTimeoutError,
    BackendUnavailableError,
)
from repro.execution.backend import ExecutionBackend, ExecutionResult


def _duckdb():
    try:
        import duckdb
    except ImportError as exc:  # pragma: no cover - exercised via is_available
        raise BackendUnavailableError(
            "the optional 'duckdb' package is not installed; "
            "install it (pip install duckdb) or use the sqlite backend"
        ) from exc
    return duckdb


class DuckDBBackend(ExecutionBackend):
    """In-memory DuckDB session implementing :class:`ExecutionBackend`."""

    name = "duckdb"

    #: DuckDB spells float columns DOUBLE; everything else matches the
    #: portable map (dates stay text for cross-engine parity).
    _TYPE_OVERRIDES = {"float": "double"}

    def __init__(self) -> None:
        _duckdb()  # fail fast with BackendUnavailableError
        self._conn = None

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("duckdb") is not None

    def connect(self) -> None:
        if self._conn is None:
            self._conn = _duckdb().connect(":memory:")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @property
    def connection(self):
        if self._conn is None:
            raise BackendExecutionError("backend is not connected")
        return self._conn

    def column_type(self, type_name: str) -> str:
        return self._TYPE_OVERRIDES.get(
            type_name, super().column_type(type_name)
        )

    def _run_statement(self, sql: str, rows: list[tuple] | None = None) -> None:
        duckdb = _duckdb()
        try:
            if rows is None:
                self.connection.execute(sql)
            else:
                self.connection.executemany(sql, rows)
        except duckdb.Error as exc:
            raise BackendExecutionError(f"duckdb: {exc}") from exc

    def _run_query(self, sql: str, timeout: float | None) -> ExecutionResult:
        duckdb = _duckdb()
        conn = self.connection
        watchdog: threading.Timer | None = None
        if timeout is not None:
            watchdog = threading.Timer(timeout, conn.interrupt)
            watchdog.daemon = True
            watchdog.start()
        try:
            cursor = conn.execute(sql)
            rows = cursor.fetchmany(self.max_rows + 1)
            if len(rows) > self.max_rows:
                raise self._overflow()
            columns = (
                [d[0] for d in cursor.description] if cursor.description else []
            )
            return ExecutionResult(columns=columns, rows=[tuple(r) for r in rows])
        except duckdb.InterruptException as exc:
            raise BackendTimeoutError(
                f"query exceeded {timeout:.3f}s execution timeout"
            ) from exc
        except duckdb.Error as exc:
            raise BackendExecutionError(f"duckdb: {exc}") from exc
        finally:
            if watchdog is not None:
                watchdog.cancel()
