"""Deterministic synthetic instances for execution-accuracy scoring.

The dataset builders in :mod:`repro.dataset.schemas` already generate
the Employees and Yelp instances deterministically from a seed, but
their random sampling makes no promises about *specific* literals: an
instance may happen to contain no department manager named Karsten, no
salary period starting 1993-01-20, and so on.  String-match scoring
never notices; execution scoring would silently compare empty result
sets, which makes every wrong-but-empty query "correct".

``build_instance_catalog`` therefore augments the base instance with a
small, seeded block of rows drawn from the same literal pools that
guarantees every gold query in the paper's Table 6 study returns a
**non-trivial** (non-empty) result.  Augmentation rows use employee
numbers from :data:`AUGMENT_EMPLOYEE_BASE` upward so they never collide
with generated rows, and are themselves a pure function of the seed —
same seed, byte-identical database (see
``tests/execution/test_instances.py``).

``instance_fingerprint`` hashes an entire catalog (schema + rows) into
a hex digest, the cheap way to assert instance identity without
loading a backend.
"""

from __future__ import annotations

import datetime
import hashlib
import random

from repro.dataset.schemas import (
    LAST_NAMES,
    build_employees_catalog,
    build_yelp_catalog,
)
from repro.errors import DatasetError
from repro.execution.backend import encode_value
from repro.sqlengine.catalog import Catalog

#: First EmployeeNumber used for augmentation rows; the base generator
#: allocates from 10001 upward, so anything at or above this is ours.
AUGMENT_EMPLOYEE_BASE = 90001

#: Literal dates the Table 6 gold queries predicate on (Q5, Q7, Q10).
GOLD_FROMDATE_1993 = datetime.date(1993, 1, 20)
GOLD_FROMDATE_1990 = datetime.date(1990, 3, 20)
GOLD_TODATE_2001 = datetime.date(2001, 10, 9)
GOLD_HIREDATE_1996 = datetime.date(1996, 5, 10)

#: First names the Table 6 gold queries predicate on (Q4, Q8).
GOLD_FIRST_NAMES = ("Karsten", "Tomokazu", "Goh", "Narain", "Perla", "Shimshon")


def _augment_employees(catalog: Catalog, seed: int) -> None:
    """Insert the guarantee block for the 12 study queries.

    Every row below exists to make one or more gold queries non-trivial:

    - two *Karsten* department managers with distinct hire dates (Q4's
      ``ORDER BY HireDate`` has something to sort),
    - salary periods starting exactly 1993-01-20 (Q5) and 1990-03-20
      with two distinct end dates (Q7's GROUP BY gets two groups),
    - one employee per Q8 IN-list name, each with a salary period,
    - an employee whose title period ends 2001-10-09, one hired
      1996-05-10, and one titled Engineer (Q10's three disjuncts),
    - a department-employee stint in ``d002`` (Q3),
    - every augmented manager also gives Q9/Q12 their joins.
    """
    rng = random.Random(seed * 9973 + 7)
    employees = catalog.table("Employees")
    salaries = catalog.table("Salaries")
    titles = catalog.table("Titles")
    dept_emp = catalog.table("DepartmentEmployee")
    dept_mgr = catalog.table("DepartmentManager")

    emp_no = AUGMENT_EMPLOYEE_BASE

    def add_employee(
        first: str,
        *,
        hire: datetime.date,
        salary_from: datetime.date | None = None,
        salary_to: datetime.date | None = None,
        title: str | None = None,
        title_to: datetime.date | None = None,
        manager_of: str | None = None,
        department: str | None = None,
    ) -> int:
        nonlocal emp_no
        number = emp_no
        emp_no += 1
        employees.insert(
            {
                "EmployeeNumber": number,
                "BirthDate": datetime.date(1960, 1 + number % 12, 15),
                "FirstName": first,
                "LastName": rng.choice(LAST_NAMES),
                "Gender": "M" if number % 2 else "F",
                "HireDate": hire,
            }
        )
        start = salary_from or hire
        end = salary_to or start + datetime.timedelta(days=730)
        salaries.insert(
            {
                "EmployeeNumber": number,
                "salary": rng.randrange(71000, 130001, 10),
                "FromDate": start,
                "ToDate": end,
            }
        )
        titles.insert(
            {
                "EmployeeNumber": number,
                "title": title or "Senior Staff",
                "FromDate": hire,
                "ToDate": title_to or datetime.date(2002, 2, 2),
            }
        )
        if department is not None:
            dept_emp.insert(
                {
                    "EmployeeNumber": number,
                    "DepartmentNumber": department,
                    "FromDate": hire,
                    "ToDate": datetime.date(2002, 2, 2),
                }
            )
        if manager_of is not None:
            dept_mgr.insert(
                {
                    "EmployeeNumber": number,
                    "DepartmentNumber": manager_of,
                    "FromDate": hire,
                    "ToDate": datetime.date(2002, 2, 2),
                }
            )
        return number

    # Q4 + Q9 + Q12: Karsten runs two departments, hired in different years.
    add_employee("Karsten", hire=datetime.date(1989, 6, 1), manager_of="d001")
    add_employee("Karsten", hire=datetime.date(1994, 2, 14), manager_of="d004")

    # Q5: salary periods starting exactly on the gold date.
    add_employee(
        "Kyoichi",
        hire=datetime.date(1992, 11, 2),
        salary_from=GOLD_FROMDATE_1993,
        manager_of="d003",
    )

    # Q7: two periods starting 1990-03-20 with *distinct* end dates, so
    # the GROUP BY ToDate produces more than one group.
    add_employee(
        "Anneke",
        hire=datetime.date(1990, 1, 8),
        salary_from=GOLD_FROMDATE_1990,
        salary_to=datetime.date(1992, 3, 20),
    )
    add_employee(
        "Sumant",
        hire=datetime.date(1990, 2, 18),
        salary_from=GOLD_FROMDATE_1990,
        salary_to=datetime.date(1993, 3, 20),
    )

    # Q8: one employee per IN-list name (Karsten handled above).
    for first in GOLD_FIRST_NAMES[1:]:
        add_employee(first, hire=datetime.date(1995, 7, 3))

    # Q10: each disjunct gets at least one matching row.
    add_employee(
        "Mary",
        hire=datetime.date(1991, 4, 22),
        title="Staff",
        title_to=GOLD_TODATE_2001,
    )
    add_employee("Patricio", hire=GOLD_HIREDATE_1996)
    add_employee("Lillian", hire=datetime.date(1997, 9, 9), title="Engineer")

    # Q3: a stint in department d002.
    add_employee("Berni", hire=datetime.date(1993, 5, 5), department="d002")


def build_instance_catalog(
    schema: str = "employees",
    *,
    seed: int | None = None,
    size: int | None = None,
) -> Catalog:
    """A catalog fit for execution scoring: base instance + guarantees.

    ``schema`` is ``employees`` or ``yelp``; ``seed``/``size`` default
    to the dataset builders' own defaults.  The Employees instance gets
    the Table 6 guarantee block (see :func:`_augment_employees`); the
    Yelp instance needs none — its gold queries are generated by
    sampling literals from the instance itself, so they are executable
    by construction.
    """
    if schema == "employees":
        kwargs: dict[str, int] = {}
        if seed is not None:
            kwargs["seed"] = seed
        if size is not None:
            kwargs["n_employees"] = size
        catalog = build_employees_catalog(**kwargs)
        _augment_employees(catalog, seed if seed is not None else 2019)
        return catalog
    if schema == "yelp":
        kwargs = {}
        if seed is not None:
            kwargs["seed"] = seed
        if size is not None:
            kwargs["n_businesses"] = size
        return build_yelp_catalog(**kwargs)
    raise DatasetError(f"unknown instance schema {schema!r}")


def instance_fingerprint(catalog: Catalog) -> str:
    """SHA-256 over the catalog's full contents (schema + rows).

    Stable across processes and Python versions: values are rendered
    through the same portable encoding the backends load
    (:func:`~repro.execution.backend.encode_value`), so two catalogs
    with equal fingerprints load to identical databases.
    """
    digest = hashlib.sha256()
    for schema in catalog.schema():
        digest.update(schema.name.encode())
        for column in schema.columns:
            digest.update(f"|{column.name}:{column.type_name}".encode())
        table = catalog.table(schema.name)
        for row in table.rows:
            for key in table.column_keys:
                digest.update(repr(encode_value(row[key])).encode())
            digest.update(b"\n")
        digest.update(b"\x00")
    return digest.hexdigest()
