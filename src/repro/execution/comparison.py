"""Normalized result-set comparison for execution accuracy.

Two queries "execute to the same answer" (the Table 5 criterion) when
their result sets are equal *after normalization*:

- **Order-insensitive by default.** SQL result order is unspecified
  without ``ORDER BY``, so rows are compared as a multiset.  When the
  gold query does order its output (detected by the scoring layer from
  the gold SQL text), pass ``ordered=True`` to compare row sequences.
- **Float tolerance.** Engines disagree in the last few bits of
  aggregates (``AVG`` over the same ints can differ between SQLite and
  DuckDB summation orders).  Floats are quantized to
  :data:`FLOAT_DECIMALS` decimal places before hashing into the
  multiset, and a float that lands exactly on an integer collapses to
  that int so ``4.0 == 4`` across engines.
- **NULL handling.** ``NULL`` normalizes to a dedicated marker that is
  equal only to itself — never to ``0``, ``''``, or ``'None'``.
- **Headers are ignored.** Column *names* differ freely across engines
  and aliases; only arity and values matter.

The unit here is :class:`~repro.execution.backend.ExecutionResult`, but
the functions accept any ``(columns, rows)``-shaped object.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.execution.backend import ExecutionResult

#: Decimal places floats are rounded to before comparison.  Seven places
#: is far tighter than any value our synthetic instances produce while
#: absorbing cross-engine summation-order noise in aggregates.
FLOAT_DECIMALS = 7

#: Normalized stand-in for SQL NULL: equal only to itself.
NULL_MARKER = ("<null>",)


def normalize_value(value: object) -> object:
    """Map one cell to its comparison-normal form.

    ``None`` becomes :data:`NULL_MARKER`; bools become ints; floats are
    rounded to :data:`FLOAT_DECIMALS` places and collapsed to int when
    whole; dates arrive as ISO text already (backends store them that
    way) and pass through as strings.
    """
    if value is None:
        return NULL_MARKER
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        rounded = round(value, FLOAT_DECIMALS)
        if rounded == int(rounded):
            return int(rounded)
        return rounded
    return value


def normalize_row(row: tuple) -> tuple:
    """Normalize every cell of one row."""
    return tuple(normalize_value(cell) for cell in row)


def normalized_rows(result: ExecutionResult) -> list[tuple]:
    """All rows of a result in comparison-normal form, in fetch order."""
    return [normalize_row(row) for row in result.rows]


@dataclass(frozen=True)
class ComparisonOutcome:
    """Verdict of one result-set comparison, with a human-readable why.

    ``equal`` is the verdict; ``reason`` is a short diagnostic for the
    "debugging a wrong-but-executable answer" workflow (``repro
    execute``, docs/execution.md) — never parsed by code.
    """

    equal: bool
    reason: str = ""


def compare_results(
    expected: ExecutionResult,
    actual: ExecutionResult,
    *,
    ordered: bool = False,
) -> ComparisonOutcome:
    """Compare two result sets under the normalization rules above.

    ``ordered=True`` compares row sequences (use when the gold query has
    an ``ORDER BY``); the default compares multisets.
    """
    if expected.columns and actual.columns:
        if len(expected.columns) != len(actual.columns):
            return ComparisonOutcome(
                False,
                f"arity differs: {len(expected.columns)} vs "
                f"{len(actual.columns)} columns",
            )
    if len(expected.rows) != len(actual.rows):
        return ComparisonOutcome(
            False,
            f"row count differs: {len(expected.rows)} vs {len(actual.rows)}",
        )
    expected_rows = normalized_rows(expected)
    actual_rows = normalized_rows(actual)
    if ordered:
        if expected_rows == actual_rows:
            return ComparisonOutcome(True, "ordered rows identical")
        for i, (want, got) in enumerate(zip(expected_rows, actual_rows)):
            if want != got:
                return ComparisonOutcome(
                    False, f"first ordered mismatch at row {i}"
                )
        return ComparisonOutcome(False, "ordered rows differ")
    if Counter(expected_rows) == Counter(actual_rows):
        return ComparisonOutcome(True, "row multisets identical")
    missing = Counter(expected_rows) - Counter(actual_rows)
    sample = next(iter(missing), None)
    return ComparisonOutcome(
        False,
        f"row multisets differ (e.g. expected row missing: {sample!r})",
    )


def results_equal(
    expected: ExecutionResult,
    actual: ExecutionResult,
    *,
    ordered: bool = False,
) -> bool:
    """Boolean shorthand for :func:`compare_results`."""
    return compare_results(expected, actual, ordered=ordered).equal
