"""The pluggable query-execution backend interface.

The paper's Table 5 reports *execution accuracy*: a recovered query is
right when it returns the same answer as the gold query on a real
database, not when its text matches.  This module defines the seam that
makes that measurable against more than one engine:

- :class:`ExecutionBackend` — the abstract contract: connect, load a
  :class:`~repro.sqlengine.catalog.Catalog` into real tables, execute
  SQL text with a per-query timeout, return an :class:`ExecutionResult`.
- :class:`ExecutionResult` — column headers plus row tuples, the value
  object the comparison layer (:mod:`repro.execution.comparison`)
  normalizes and compares.

Concrete engines live in sibling modules (``sqlite_backend`` — stdlib,
always available — and ``duckdb_backend`` — optional, feature-gated);
``repro.execution`` exposes a name-keyed registry over them.  Backends
store **dates as ISO-8601 text** so equality and range predicates
behave identically across engines (ISO strings sort lexicographically
in date order), which is what makes the cross-engine parity suite
(`tests/execution/test_parity.py`) a meaningful invariant.

Adding a backend means subclassing :class:`ExecutionBackend` and
implementing the four primitives (``connect`` / ``close`` /
``_run_statement`` / ``_run_query``); ``load_catalog`` and the
context-manager protocol are shared.  See ``docs/execution.md``.
"""

from __future__ import annotations

import datetime
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import BackendError, BackendExecutionError
from repro.sqlengine.catalog import Catalog

#: Hard cap on rows fetched from any single query.  Mistranscribed
#: queries can turn a join into a cross product; past this cap the
#: backend raises :class:`~repro.errors.BackendExecutionError` (scored
#: as ``invalid_sql``) instead of exhausting memory.
MAX_RESULT_ROWS = 100_000

#: Catalog type name -> portable column affinity used by ``load_catalog``.
#: Dates map to text on purpose (see module docstring).
PORTABLE_TYPES = {
    "string": "text",
    "int": "integer",
    "float": "float",
    "date": "text",
}


@dataclass
class ExecutionResult:
    """What one query returned: column headers plus row tuples.

    ``rows`` hold backend-native Python values (int/float/str/None);
    comparison-grade normalization (float quantization, NULL markers,
    date canonicalization) is the comparison layer's job, not the
    backend's.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)


def encode_value(value: object) -> object:
    """Backend-portable encoding of one catalog cell value.

    Dates become ISO text (both backends store them as text columns),
    bools become ints; everything else passes through unchanged.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def quote_identifier(name: str) -> str:
    """Double-quote an identifier (standard SQL; both engines accept it)."""
    return '"' + name.replace('"', '""') + '"'


class ExecutionBackend(ABC):
    """Abstract execution engine: connect, load, execute, compare.

    Lifecycle::

        with SQLiteBackend() as backend:        # connect ... close
            backend.load_catalog(catalog)       # CREATE TABLE + INSERT
            result = backend.execute(sql, timeout=2.0)

    Implementations must be deterministic loaders: loading the same
    catalog twice must produce byte-identical databases (the round-trip
    tests in ``tests/execution/test_instances.py`` rely on it).
    """

    #: Registry key and metrics/span label value (``sqlite``, ``duckdb``).
    name: str = "abstract"

    #: Per-query row cap; see :data:`MAX_RESULT_ROWS`.
    max_rows: int = MAX_RESULT_ROWS

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's driver is importable right now."""
        return True

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def connect(self) -> None:
        """Open an in-memory database session (idempotent)."""

    @abstractmethod
    def close(self) -> None:
        """Tear the session down (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engine primitives -------------------------------------------------

    @abstractmethod
    def _run_statement(self, sql: str, rows: list[tuple] | None = None) -> None:
        """Run a DDL/DML statement (with optional executemany rows)."""

    @abstractmethod
    def _run_query(self, sql: str, timeout: float | None) -> ExecutionResult:
        """Run a SELECT and fetch up to ``max_rows`` rows.

        Must raise :class:`~repro.errors.BackendTimeoutError` when the
        query exceeds ``timeout`` seconds and
        :class:`~repro.errors.BackendExecutionError` on any engine-side
        failure (parse, semantic, oversized result).
        """

    # -- shared behaviour --------------------------------------------------

    def column_type(self, type_name: str) -> str:
        """Engine column type for a catalog type name.

        The default maps through :data:`PORTABLE_TYPES`; subclasses
        override to spell engine-specific affinities.
        """
        return PORTABLE_TYPES.get(type_name, "text")

    def load_catalog(self, catalog: Catalog) -> None:
        """Materialize every table of ``catalog`` into the session.

        Creates one engine table per catalog table (original-cased,
        quoted identifiers) and inserts rows in catalog order, so the
        loaded database is a deterministic function of the catalog.
        """
        for schema in catalog.schema():
            table = catalog.table(schema.name)
            columns = ", ".join(
                f"{quote_identifier(col.name)} {self.column_type(col.type_name)}"
                for col in schema.columns
            )
            self._run_statement(
                f"CREATE TABLE {quote_identifier(schema.name)} ({columns})"
            )
            if not table.rows:
                continue
            placeholders = ", ".join("?" for _ in schema.columns)
            keys = table.column_keys
            encoded = [
                tuple(encode_value(row[key]) for key in keys)
                for row in table.rows
            ]
            self._run_statement(
                f"INSERT INTO {quote_identifier(schema.name)} "
                f"VALUES ({placeholders})",
                rows=encoded,
            )

    def execute(
        self, sql: str, timeout: float | None = None
    ) -> ExecutionResult:
        """Execute ``sql`` and return its result set.

        ``timeout`` is wall seconds for this single query; ``None``
        disables the watchdog.  All failures surface as
        :class:`~repro.errors.BackendError` subclasses.
        """
        if not sql or not sql.strip():
            raise BackendExecutionError("empty SQL text")
        return self._run_query(sql, timeout)

    def _overflow(self) -> BackendError:
        return BackendExecutionError(
            f"result exceeds the {self.max_rows}-row cap"
        )
