"""SpeakQL reproduction: speech-driven multimodal querying of structured data.

This library reproduces the SpeakQL system (Shah, Li, Kumar, Saul):
an end-to-end pipeline that corrects ASR transcriptions of dictated SQL
queries using the SQL grammar (structure determination) and a phonetic
index of the queried database (literal determination), plus the
multimodal correction interface, datasets, metrics, baselines, and the
full experiment suite.

Quickstart::

    from repro import SpeakQL, build_employees_catalog, make_custom_engine

    catalog = build_employees_catalog()
    engine = make_custom_engine(["SELECT AVG ( salary ) FROM Salaries"])
    speakql = SpeakQL(catalog, engine=engine)
    out = speakql.query_from_speech("SELECT AVG ( salary ) FROM Salaries", seed=1)
    print(out.sql)
"""

from repro.asr import (
    AsrResult,
    SimulatedAsrEngine,
    make_custom_engine,
    make_generic_engine,
    verbalize_sql,
)
from repro.core import (
    BatchRequest,
    SpeakQL,
    SpeakQLArtifacts,
    SpeakQLConfig,
    SpeakQLOutput,
    SpeakQLService,
)
from repro.core.clauses import ClauseKind, ClauseSpeakQL
from repro.core.nested import correct_nested_transcription
from repro.dataset import (
    QueryGenerator,
    build_employees_catalog,
    build_yelp_catalog,
    build_spoken_datasets,
)
from repro.metrics import AccuracyMetrics, score_query, token_edit_distance
from repro.sqlengine import Catalog, Table, execute, format_statement, parse_select

__version__ = "0.1.0"

__all__ = [
    "AsrResult",
    "SimulatedAsrEngine",
    "make_custom_engine",
    "make_generic_engine",
    "verbalize_sql",
    "SpeakQL",
    "SpeakQLConfig",
    "SpeakQLOutput",
    "SpeakQLArtifacts",
    "SpeakQLService",
    "BatchRequest",
    "ClauseKind",
    "ClauseSpeakQL",
    "correct_nested_transcription",
    "QueryGenerator",
    "build_employees_catalog",
    "build_yelp_catalog",
    "build_spoken_datasets",
    "AccuracyMetrics",
    "score_query",
    "token_edit_distance",
    "Catalog",
    "Table",
    "execute",
    "format_statement",
    "parse_select",
]
