"""Incremental correction sessions for the serving layer.

The paper's headline interaction is clause-level correction: the user
dictates a query once, then re-dictates one wrong clause or
touch-patches a token — not the whole query (Section 5; the pilot study
found whole-query re-dictation unusable past ~10 seconds of phrase).
This module makes that loop first-class on the serving side:

- :class:`SessionStore` — a bounded, TTL'd, thread-safe LRU of
  :class:`SessionState`, keyed by ``QueryRequest.session_id``.  Each
  state caches the query's clause segmentation and one
  :class:`SpanDecode` per clause: the span's text, its narrowing
  tables context, the corrected SQL, the top-k
  :class:`~repro.observability.forensics.StructureCandidate`s, and the
  span's :class:`~repro.structure.search.SearchStats`.
- :class:`SessionDecoder` — decodes turn 0 cold (every clause span),
  then, for a correction turn carrying a
  :class:`~repro.api.ClauseEdit`, re-searches **only the affected
  span** and splices the cached decodes of unchanged clauses.

Why splicing is bit-identical to a cold decode of the same text: a
span decode is a pure function of ``(clause text, clause kind, tables
context)`` — the clause grammar's index, the engine weights, and the
literal determiner are fixed per serving process — so replaying a
cached :class:`SpanDecode` yields exactly the candidates, distances,
and stats counters a fresh search would.  The tables context is part
of the reuse key, which makes the one real cross-clause dependency
(the FROM tables narrow later clauses' literal determination) an
automatic invalidation: edit the FROM clause and every dependent span
re-decodes.

Turn ordering is strict (``turn == last_turn + 1``); violations raise
:class:`TurnConflictError` and an expired/evicted/unknown session
raises :class:`UnknownSessionError` — both map onto the wire
protocol's closed ``error_kind`` catalog.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.api import EDIT_REDICTATE, ClauseEdit, QueryRequest
from repro.core.clauses import CLAUSE_TO_KIND, ClauseSpeakQL
from repro.core.result import ComponentTimings, SpeakQLOutput
from repro.errors import DeadlineExceededError
from repro.grammar.vocabulary import tokenize_sql
from repro.interface.display import Clause, split_clauses
from repro.observability.forensics import StructureCandidate
from repro.serving.protocol import (
    ERROR_TURN_CONFLICT,
    ERROR_UNKNOWN_SESSION,
)
from repro.structure.compiled import span_state_key
from repro.structure.masking import preprocess_transcription
from repro.structure.search import SearchStats

#: The timing stage one session turn reports (clause search + literal
#: determination run per span; the split is not observable per stage).
SESSION_DECODE_STAGE = "session_decode"

#: Candidates cached per span (enough for the interface's alternatives
#: drawer without re-searching).
DEFAULT_SPAN_TOP_K = 5


class SessionError(RuntimeError):
    """Base of session-turn failures; ``kind`` is the wire error kind."""

    kind: str = "internal"


class UnknownSessionError(SessionError):
    """The turn referenced a session the store does not hold (never
    started, expired past its TTL, or evicted by the LRU bound)."""

    kind = ERROR_UNKNOWN_SESSION


class TurnConflictError(SessionError):
    """The turn arrived out of order (contract: ``last_turn + 1``)."""

    kind = ERROR_TURN_CONFLICT


@dataclass(frozen=True)
class SpanDecode:
    """The cached decode of one clause span.

    ``state_key`` is :func:`repro.structure.compiled.span_state_key`
    over the span's masked tokens and the engine weights in force —
    the handle onto the compiled kernel's per-span DP/beam work this
    cache entry stands in for (reweighting changes the key, so stale
    distances are never replayed).
    """

    clause: str
    text: str
    tables_context: tuple[str, ...]
    sql: str
    candidates: tuple[StructureCandidate, ...]
    stats: SearchStats | None
    state_key: tuple

    def matches(self, text: str, tables_context: tuple[str, ...]) -> bool:
        """Whether this cached decode answers ``text`` in context."""
        return self.text == text and self.tables_context == tables_context


@dataclass(frozen=True)
class TurnResult:
    """What one decoded session turn produced.

    ``reused_spans`` names the clauses whose cached decode was spliced
    in unchanged; ``spans_total`` counts every clause span of the turn
    (so ``spans_total - len(reused_spans)`` spans were searched);
    ``partials`` holds the clause-level partial frames when they were
    requested.
    """

    output: SpeakQLOutput
    reused_spans: tuple[str, ...]
    spans_total: int
    partials: tuple = ()


@dataclass
class SessionState:
    """Everything one correction session has decoded so far."""

    session_id: str
    turn: int = -1
    text: str = ""
    clause_texts: "OrderedDict[str, str]" = field(default_factory=OrderedDict)
    spans: dict[str, SpanDecode] = field(default_factory=dict)
    output: SpeakQLOutput | None = None
    created_at: float = 0.0
    last_used: float = 0.0
    turns_total: int = 0
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


class SessionStore:
    """Bounded, TTL'd, thread-safe LRU of :class:`SessionState`.

    ``limit`` caps live sessions (least recently used evicted first);
    ``ttl_seconds`` expires sessions idle longer than the TTL at the
    next store access.  ``clock`` is injectable for tests (monotonic
    seconds).
    """

    def __init__(
        self,
        limit: int = 64,
        ttl_seconds: float = 900.0,
        clock=time.monotonic,
    ) -> None:
        if limit < 1:
            raise ValueError("session limit must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("session ttl_seconds must be > 0")
        self.limit = limit
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, SessionState] = OrderedDict()
        self._created_total = 0
        self._evicted_lru_total = 0
        self._expired_total = 0
        self._turns_total = 0

    def __len__(self) -> int:
        with self._lock:
            self._sweep_locked()
            return len(self._sessions)

    def get(self, session_id: str) -> SessionState | None:
        """The live session, LRU-touched — ``None`` if absent/expired."""
        with self._lock:
            self._sweep_locked()
            state = self._sessions.get(session_id)
            if state is None:
                return None
            self._sessions.move_to_end(session_id)
            state.last_used = self._clock()
            return state

    def create(self, session_id: str) -> SessionState:
        """A fresh state under ``session_id`` (replacing any prior one),
        evicting the least recently used session beyond the limit."""
        with self._lock:
            self._sweep_locked()
            now = self._clock()
            state = SessionState(
                session_id=session_id, created_at=now, last_used=now
            )
            self._sessions.pop(session_id, None)
            self._sessions[session_id] = state
            self._created_total += 1
            while len(self._sessions) > self.limit:
                self._sessions.popitem(last=False)
                self._evicted_lru_total += 1
            return state

    def record_turn(self, state: SessionState) -> None:
        """Bookkeeping after a successfully decoded turn."""
        with self._lock:
            state.turns_total += 1
            state.last_used = self._clock()
            self._turns_total += 1

    def sweep(self) -> int:
        """Expire idle sessions now; returns how many were dropped."""
        with self._lock:
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        horizon = self._clock() - self.ttl_seconds
        expired = [
            sid
            for sid, state in self._sessions.items()
            if state.last_used < horizon
        ]
        for sid in expired:
            del self._sessions[sid]
        self._expired_total += len(expired)
        return len(expired)

    def stats(self) -> dict:
        """Operator snapshot (reported on ``statusz``)."""
        with self._lock:
            self._sweep_locked()
            return {
                "live": len(self._sessions),
                "limit": self.limit,
                "ttl_seconds": self.ttl_seconds,
                "created_total": self._created_total,
                "evicted_lru_total": self._evicted_lru_total,
                "expired_total": self._expired_total,
                "turns_total": self._turns_total,
            }


def merge_search_stats(parts: list[SearchStats | None]) -> SearchStats | None:
    """Sum per-span stats into one query-level view.

    Counters add; the deployment-shape fields (``compare=False`` on
    :class:`SearchStats`) summarize: one uniform kernel name survives,
    ``dap_fallback``/``result_cache_hit`` are ORs.
    """
    present = [p for p in parts if p is not None]
    if not present:
        return None
    total = SearchStats()
    for part in present:
        total.nodes_visited += part.nodes_visited
        total.dp_cells += part.dp_cells
        total.tries_searched += part.tries_searched
        total.tries_skipped += part.tries_skipped
        total.candidates_scored += part.candidates_scored
        total.levels_visited += part.levels_visited
        total.rows_pruned += part.rows_pruned
        total.beam_bound_updates += part.beam_bound_updates
        total.inv_cache_hits += part.inv_cache_hits
        total.inv_cache_builds += part.inv_cache_builds
    kernels = {part.kernel for part in present if part.kernel}
    total.kernel = kernels.pop() if len(kernels) == 1 else (
        "mixed" if kernels else ""
    )
    total.dap_fallback = any(part.dap_fallback for part in present)
    total.result_cache_hit = any(part.result_cache_hit for part in present)
    return total


class SessionDecoder:
    """Clause-wise incremental decoding over a :class:`SessionStore`.

    ``clauses`` supplies the per-clause-kind searchers and the literal
    determiner (share the serving pipeline's artifacts so the clause
    indexes build once per process); ``top_k`` is how many candidates
    each span caches.
    """

    def __init__(
        self,
        clauses: ClauseSpeakQL,
        store: SessionStore,
        *,
        top_k: int = DEFAULT_SPAN_TOP_K,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.clauses = clauses
        self.store = store
        self.top_k = top_k

    # -- turn entry point ----------------------------------------------------

    def decode(
        self,
        request: QueryRequest,
        *,
        deadline_at: float | None = None,
        clock=time.monotonic,
        tracer=None,
        collect_partials: bool = False,
    ) -> TurnResult:
        """Serve one session turn.

        Returns a :class:`TurnResult`; when ``collect_partials`` its
        ``partials`` carry one clause-level frame per span in decode
        order.  Raises :class:`UnknownSessionError` /
        :class:`TurnConflictError` per the session contract and
        :class:`~repro.errors.DeadlineExceededError` at span
        boundaries.
        """
        if request.session_id is None:
            raise ValueError("not a session request (session_id is None)")
        if request.turn == 0:
            state = self.store.create(request.session_id)
        else:
            state = self.store.get(request.session_id)
            if state is None:
                raise UnknownSessionError(
                    f"unknown session {request.session_id!r}: never "
                    "started, expired, or evicted — restart from turn 0"
                )
        with state.lock:
            if request.turn > 0 and request.turn != state.turn + 1:
                raise TurnConflictError(
                    f"turn {request.turn} arrived out of order for session "
                    f"{request.session_id!r} (expected {state.turn + 1})"
                )
            if request.turn == 0:
                text = request.text
            else:
                assert request.edit is not None  # enforced by QueryRequest
                text = self._apply_edit(state, request.edit)
            started = clock()
            result = self._decode_text(
                state, text, deadline_at=deadline_at, clock=clock,
                tracer=tracer, collect_partials=collect_partials,
            )
            result.output.timings = ComponentTimings(
                stages={SESSION_DECODE_STAGE: clock() - started}
            )
            state.turn = request.turn
            state.text = text
            state.output = result.output
        self.store.record_turn(state)
        return result

    # -- internals -----------------------------------------------------------

    def _apply_edit(self, state: SessionState, edit: ClauseEdit) -> str:
        """The session's full text after splicing one clause edit.

        An edit replaces its clause's text (or introduces the clause,
        inserted at its canonical position).  Both edit kinds splice
        the same way — ``redictate`` text is a fresh transcription of
        the clause, ``token_patch`` the display's patched tokens.
        """
        new_texts: OrderedDict[str, str] = OrderedDict()
        placed = False
        canonical = [clause.value for clause in Clause]
        for name in canonical:
            if name == edit.clause:
                new_texts[name] = edit.text
                placed = True
            elif name in state.clause_texts:
                new_texts[name] = state.clause_texts[name]
        if not placed:  # pragma: no cover - canonical covers CLAUSE_NAMES
            new_texts[edit.clause] = edit.text
        return " ".join(new_texts.values())

    def _decode_text(
        self,
        state: SessionState,
        text: str,
        *,
        deadline_at: float | None,
        clock,
        tracer,
        collect_partials: bool,
    ) -> TurnResult:
        segmented = split_clauses(text.split())
        if not segmented:
            # No clause head at all (free-form fragment): decode the
            # whole text as one SELECT-grammar span so the session
            # still answers.
            segmented = {Clause.SELECT: text.split()}
        clause_texts: OrderedDict[str, str] = OrderedDict(
            (clause.value, " ".join(tokens))
            for clause, tokens in segmented.items()
        )
        spans: dict[str, SpanDecode] = {}
        reused: list[str] = []
        partials: list[dict] = []
        assembled: list[str] = []
        stats_parts: list[SearchStats | None] = []
        tables: list[str] = []
        for clause, tokens in segmented.items():
            if deadline_at is not None and clock() >= deadline_at:
                raise DeadlineExceededError(
                    f"deadline exceeded before session span {clause.value!r}"
                )
            clause_text = " ".join(tokens)
            tables_context = tuple(tables)
            cached = state.spans.get(clause.value)
            if cached is not None and cached.matches(
                clause_text, tables_context
            ):
                span = cached
                reused.append(clause.value)
                was_reused = True
            else:
                span = self._decode_span(clause, clause_text, tables_context,
                                         tracer=tracer)
                was_reused = False
            spans[clause.value] = span
            assembled.append(span.sql)
            stats_parts.append(span.stats)
            if clause is Clause.FROM:
                tables = [
                    t
                    for t in tokenize_sql(span.sql)
                    if self.clauses.catalog.has_table(t)
                ]
            if collect_partials:
                partials.append({
                    "clause": clause.value,
                    "sql": span.sql,
                    "reused": was_reused,
                })
        state.clause_texts = clause_texts
        state.spans = spans
        output = SpeakQLOutput(
            asr_text=text,
            asr_alternatives=(),
            queries=[" ".join(assembled)],
            structure=None,
            literal_result=None,
            search_stats=merge_search_stats(stats_parts),
        )
        return TurnResult(
            output=output,
            reused_spans=tuple(reused),
            spans_total=len(segmented),
            partials=tuple(partials),
        )

    def _decode_span(
        self,
        clause: Clause,
        clause_text: str,
        tables_context: tuple[str, ...],
        *,
        tracer=None,
    ) -> SpanDecode:
        kind = CLAUSE_TO_KIND[clause]
        span = None
        if tracer is not None:
            with tracer.span("session.span", clause=clause.value,
                             kind=kind.value):
                span = self._decode_span_inner(
                    clause, kind, clause_text, tables_context
                )
        else:
            span = self._decode_span_inner(
                clause, kind, clause_text, tables_context
            )
        return span

    def _decode_span_inner(
        self, clause, kind, clause_text: str, tables_context: tuple[str, ...]
    ) -> SpanDecode:
        sql, results, stats = self.clauses.decode_clause(
            clause_text,
            kind,
            k=self.top_k,
            tables_context=list(tables_context) or None,
        )
        masked = preprocess_transcription(clause_text)
        searcher = self.clauses._searcher(kind)
        return SpanDecode(
            clause=clause.value,
            text=clause_text,
            tables_context=tables_context,
            sql=sql,
            candidates=tuple(
                StructureCandidate(structure=r.structure, distance=r.distance)
                for r in results
            ),
            stats=stats,
            state_key=span_state_key(masked.masked, searcher.weights),
        )


__all__ = [
    "DEFAULT_SPAN_TOP_K",
    "SESSION_DECODE_STAGE",
    "SessionDecoder",
    "SessionError",
    "SessionState",
    "SessionStore",
    "SpanDecode",
    "TurnConflictError",
    "TurnResult",
    "UnknownSessionError",
    "merge_search_stats",
]
