"""The live telemetry plane behind ``GET /metrics`` and ``GET /statusz``.

PR 3's observability layer exports metrics *once, at exit* — useless for
operating a long-running daemon.  This module makes the same registries
scrapeable live:

- :class:`TelemetryPlane` — the render source: merges point-in-time
  snapshots of every participating registry (the runtime's serving
  instruments, the shard executor's per-shard counters which share that
  registry, and — on the async daemon — the micro-batcher's
  loop-confined registry) into one Prometheus text page, and exposes the
  runtime's ``statusz()`` operator snapshot;
- :class:`AsyncTelemetryServer` — a minimal asyncio HTTP/1.0 GET
  handler serving the plane **on the event loop**.  This is deliberate:
  the batcher's registry is confined to the loop thread (the repo-wide
  lock-free registry discipline), so the only race-free place to read
  it is the loop itself.  The threaded daemon reuses its stdlib probe
  server instead (see :mod:`repro.serving.daemon`), where every
  registry involved is either lock-guarded or snapshot-copied.

Rendering is pull-based and allocation-light: a scrape snapshots the
registries (retrying if an instrument registers mid-copy) and renders;
nothing is maintained between scrapes.
"""

from __future__ import annotations

import asyncio
import json

from repro.observability.export import to_prometheus
from repro.observability.metrics import MetricsRegistry
from repro.serving.runtime import ServingRuntime

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryPlane:
    """Render source for the live telemetry endpoints.

    ``registries`` are *additional* registries to merge into the scrape
    beyond the runtime's own (e.g. the async front end's batcher
    registry); duplicates are merged once.
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        registries: tuple[MetricsRegistry, ...] = (),
    ) -> None:
        self.runtime = runtime
        self.registries = tuple(registries)

    def _merged(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        seen: list[MetricsRegistry] = []
        candidates = [self.runtime.metrics, *self.registries]
        for registry in candidates:
            if registry is None:
                continue
            if any(registry is s for s in seen):
                continue
            seen.append(registry)
            merged.merge(registry.snapshot())
        return merged

    def metrics_text(self) -> str:
        """The merged registries as a Prometheus text page."""
        return to_prometheus(self._merged())

    def statusz(self) -> dict:
        """The runtime's JSON-ready operator snapshot."""
        return self.runtime.statusz()


def telemetry_response(
    plane: TelemetryPlane, path: str
) -> tuple[int, str, bytes] | None:
    """Route one GET ``path`` against the plane.

    Returns ``(status, content_type, body)`` for the telemetry routes,
    ``None`` for paths the caller should handle (or 404) itself.
    Shared by the threaded handler and the asyncio server so both
    daemons serve byte-identical pages.
    """
    if path == "/metrics":
        return (
            200,
            PROMETHEUS_CONTENT_TYPE,
            plane.metrics_text().encode("utf-8"),
        )
    if path == "/statusz":
        body = json.dumps(plane.statusz(), sort_keys=True).encode("utf-8")
        return 200, "application/json", body
    return None


class AsyncTelemetryServer:
    """``GET /metrics`` + ``GET /statusz`` (+ the probes) on the loop.

    A deliberately minimal HTTP/1.0 server: request line, headers
    drained, one response, connection closed.  Runs entirely on the
    event loop so loop-confined registries can be read without locks.
    """

    def __init__(
        self,
        plane: TelemetryPlane,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.plane = plane
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int] | None:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "AsyncTelemetryServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers up to the blank line
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            if len(parts) < 2 or parts[0] != b"GET":
                await self._respond(
                    writer, 405, "text/plain", b"GET only\n"
                )
                return
            path = parts[1].decode("latin-1").split("?", 1)[0]
            routed = telemetry_response(self.plane, path)
            if routed is not None:
                await self._respond(writer, *routed)
                return
            if path in ("/healthz", "/readyz"):
                health = self.plane.runtime.health()
                status = 200
                if path == "/readyz":
                    ready = (
                        health["ready"]
                        and health["inflight"] < health["queue_limit"]
                        and health.get("shard_pool_ok", True)
                    )
                    status = 200 if ready else 503
                body = json.dumps(health, sort_keys=True).encode("utf-8")
                await self._respond(writer, status, "application/json", body)
                return
            await self._respond(
                writer, 404, "text/plain",
                b"unknown path (try /metrics or /statusz)\n",
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "AsyncTelemetryServer",
    "TelemetryPlane",
    "telemetry_response",
]
