"""Dynamic micro-batching: coalesce concurrent requests, dispatch once.

:class:`MicroBatcher` sits between an asyncio front end (the async
JSON-lines daemon, the open-loop workload runner) and a
:class:`~repro.serving.runtime.ServingRuntime`.  Concurrently arriving
requests are held briefly and dispatched together as **one**
:meth:`~repro.serving.runtime.ServingRuntime.submit_batch` call,
amortizing the per-dispatch overhead of the front end — executor
hand-off, admission/accounting lock round-trips, span bookkeeping —
across the whole batch while preserving per-request outcomes and
bit-identical answers (``submit_batch`` executes requests through the
exact same ``_execute`` path as ``submit``).

Flush policy (:func:`flush_by`): a batch is dispatched the moment any
of these holds —

- **full** — ``max_batch_size`` requests are waiting;
- **wait** — the oldest request has waited ``max_wait_ms``;
- **deadline** — a waiting request's latency budget minus
  ``deadline_slack_ms`` is about to be eaten by coalescing (a
  tight-deadline request never idles in the queue);
- **drain** — :meth:`MicroBatcher.close` flushes whatever is pending.

Queue time is charged against the request: a request that spent ``w``
seconds in the front end — the coalescing window *plus* any wait in the
dispatch queue behind earlier batches — reaches the runtime with its
``deadline`` budget reduced by ``w``, so the client's end-to-end budget
keeps meaning what it meant under the serial daemon: a request whose
budget was consumed by queueing times out instead of serving stale.

Observability: each dispatch opens a ``batch.flush`` span (``size``,
``reason``, and the carried wire ``trace_ids``) and maintains ``speakql_batch_flush_total`` /
``speakql_batch_flush_size`` / ``speakql_batch_coalesce_wait_seconds``.
The batcher's registry writes are confined to the event-loop thread —
give it its own :class:`~repro.observability.metrics.MetricsRegistry`
and merge at a synchronization point (the repo-wide registry
discipline), or call :meth:`merge_metrics_into` after :meth:`close`.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.api import QueryRequest, QueryResponse
from repro.observability import names as obs_names
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer

#: Flush reasons (the `reason` span attribute / metric label).
FLUSH_FULL = "full"
FLUSH_WAIT = "wait"
FLUSH_DEADLINE = "deadline"
FLUSH_TURN = "turn"
FLUSH_DRAIN = "drain"

#: Batch-size histogram buckets (requests per flush, powers of two).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: Default coalescing window and deadline slack (milliseconds).
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_DEADLINE_SLACK_MS = 5.0


def flush_by(
    request: QueryRequest,
    enqueued_at: float,
    *,
    max_wait: float,
    deadline_slack: float,
) -> tuple[float, str]:
    """When (absolute clock) a pending request forces a flush, and why.

    Pure policy, unit-testable without an event loop: the request must
    be dispatched by ``enqueued_at + max_wait`` (reason ``wait``) — or
    earlier, when its deadline budget minus ``deadline_slack`` would
    otherwise be consumed by queueing (reason ``deadline``).
    """
    cutoff = enqueued_at + max_wait
    reason = FLUSH_WAIT
    if request.deadline is not None:
        near = enqueued_at + max(0.0, request.deadline - deadline_slack)
        if near < cutoff:
            cutoff, reason = near, FLUSH_DEADLINE
    return cutoff, reason


@dataclass
class _Pending:
    """One request waiting in the coalescing queue.

    ``enqueued_at`` is event-loop time (drives the flush timer);
    ``enqueued_mono`` is :func:`time.monotonic`, readable from the
    dispatch thread, which charges the full front-end wait against the
    request's deadline budget.
    """

    request: QueryRequest
    enqueued_at: float
    enqueued_mono: float
    flush_at: float
    flush_reason: str
    future: asyncio.Future


class MicroBatcher:
    """Coalesces concurrent submissions into ``submit_batch`` dispatches.

    Parameters
    ----------
    runtime:
        Anything with a ``submit_batch(requests) -> list[QueryResponse]``
        method (normally a :class:`~repro.serving.runtime.ServingRuntime`).
    max_batch_size:
        Flush immediately once this many requests are waiting.
    max_wait_ms:
        Flush once the oldest request has waited this long — the
        latency price of coalescing, and the knob that trades p50 for
        throughput.
    deadline_slack_ms:
        A pending request whose remaining deadline budget drops to this
        slack forces an immediate flush, so tight-deadline requests are
        never idled into a timeout by the coalescing window.
    dispatch_workers:
        Threads executing dispatched batches; >1 lets a new batch start
        while the previous one drains (open-loop overload behaviour).
    tracer / metrics:
        Event-loop-thread observability handles (see module docstring).

    Use from a single event loop; every method except construction must
    run on that loop.
    """

    def __init__(
        self,
        runtime,
        *,
        max_batch_size: int = 8,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        deadline_slack_ms: float = DEFAULT_DEADLINE_SLACK_MS,
        dispatch_workers: int = 2,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0 or deadline_slack_ms < 0:
            raise ValueError("wait/slack must be non-negative milliseconds")
        if dispatch_workers < 1:
            raise ValueError("dispatch_workers must be >= 1")
        self.runtime = runtime
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1000.0
        self.deadline_slack = deadline_slack_ms / 1000.0
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None
        self._timer_target = 0.0
        self._dispatches: set[asyncio.Future] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="batch-dispatch"
        )
        self._closed = False
        self.batches_dispatched = 0
        self.requests_submitted = 0

    # -- submission ----------------------------------------------------------

    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Enqueue one request; resolves with its batch's response."""
        if self._closed:
            raise RuntimeError("the batcher is closed")
        loop = asyncio.get_running_loop()
        now = loop.time()
        cutoff, reason = flush_by(
            request,
            now,
            max_wait=self.max_wait,
            deadline_slack=self.deadline_slack,
        )
        pending = _Pending(
            request,
            now,
            time.monotonic(),
            cutoff,
            reason,
            loop.create_future(),
        )
        self._pending.append(pending)
        self.requests_submitted += 1
        if request.session_id is not None:
            # Correction turns are interactive by definition: a user is
            # watching the clause they just re-dictated.  Never idle one
            # in the coalescing window — flush the batch it joined now.
            self._flush(FLUSH_TURN)
        elif len(self._pending) >= self.max_batch_size:
            self._flush(FLUSH_FULL)
        else:
            self._arm_timer(loop, cutoff)
        return await pending.future

    # -- flush machinery -----------------------------------------------------

    def _arm_timer(
        self, loop: asyncio.AbstractEventLoop, cutoff: float
    ) -> None:
        """Ensure the flush timer fires no later than ``cutoff``.

        The timer is re-armed only when the new request needs an
        *earlier* flush than already scheduled — the common case (a
        later-cutoff arrival joining an armed batch) costs nothing,
        keeping the per-request hot path free of timer churn.
        """
        if self._timer is not None:
            if cutoff >= self._timer_target:
                return
            self._timer.cancel()
        self._timer_target = cutoff
        self._timer = loop.call_at(cutoff, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if not self._pending:
            return
        due = min(self._pending, key=lambda p: p.flush_at)
        self._flush(due.flush_reason)

    def _flush(self, reason: str) -> None:
        """Dispatch everything pending as one ``submit_batch`` call."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = self._pending
        self._pending = []
        if not batch:
            return
        loop = asyncio.get_running_loop()
        now = loop.time()
        for item in batch:
            self._observe(
                obs_names.BATCH_COALESCE_WAIT_SECONDS,
                max(0.0, now - item.enqueued_at),
            )
        if self.metrics is not None:
            self.metrics.counter(
                obs_names.BATCH_FLUSH_TOTAL, reason=reason
            ).inc()
            self.metrics.histogram(
                obs_names.BATCH_FLUSH_SIZE, buckets=BATCH_SIZE_BUCKETS
            ).observe(len(batch))
        self.batches_dispatched += 1
        dispatch = loop.run_in_executor(
            self._executor, self._dispatch, batch, reason
        )
        self._dispatches.add(dispatch)

        def _deliver(done: asyncio.Future) -> None:
            self._dispatches.discard(done)
            error = done.exception()
            if error is not None:
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(error)
                return
            for item, response in zip(batch, done.result()):
                if not item.future.done():
                    item.future.set_result(response)

        dispatch.add_done_callback(_deliver)

    def _dispatch(
        self, batch: Sequence[_Pending], reason: str
    ) -> list[QueryResponse]:
        """Runs on a dispatch thread: one batch, one runtime call.

        The full front-end wait — coalescing window plus time queued
        behind earlier batches — is charged against each request's
        deadline budget *here*, at the last moment before execution, so
        a request whose budget the queue consumed times out instead of
        serving stale.  (No metric writes on this thread: the batcher's
        registry is confined to the event loop.)
        """
        now = time.monotonic()
        requests: list[QueryRequest] = []
        for item in batch:
            request = item.request
            if request.deadline is not None:
                waited = max(0.0, now - item.enqueued_mono)
                request = replace(
                    request, deadline=max(0.0, request.deadline - waited)
                )
            requests.append(request)
        # Wire-level correlation: the flush span names every trace id it
        # carried, so a client-visible trace_id can be joined with the
        # batch that served it.
        trace_ids = [r.trace_id for r in requests if r.trace_id is not None]
        with self.tracer.span(
            obs_names.SPAN_BATCH_FLUSH,
            size=len(requests),
            reason=reason,
            trace_ids=trace_ids,
        ):
            return self.runtime.submit_batch(requests)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    # -- lifecycle -----------------------------------------------------------

    async def drain(self) -> None:
        """Flush pending requests and wait for in-flight dispatches."""
        if self._pending:
            self._flush(FLUSH_DRAIN)
        while self._dispatches:
            await asyncio.gather(
                *list(self._dispatches), return_exceptions=True
            )

    async def close(self) -> None:
        """Drain, then release the dispatch threads.  Idempotent."""
        if self._closed:
            await self.drain()
            return
        self._closed = True
        await self.drain()
        self._executor.shutdown(wait=True)

    def merge_metrics_into(self, target: MetricsRegistry) -> None:
        """Fold the batcher's (loop-confined) registry into ``target``.

        Call only after :meth:`close` (or :meth:`drain`) — merging while
        dispatches run would race the runtime's own writes.
        """
        if self.metrics is not None and self.metrics is not target:
            target.merge(self.metrics)


__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_DEADLINE_SLACK_MS",
    "DEFAULT_MAX_WAIT_MS",
    "FLUSH_DEADLINE",
    "FLUSH_DRAIN",
    "FLUSH_FULL",
    "FLUSH_TURN",
    "FLUSH_WAIT",
    "MicroBatcher",
    "flush_by",
]
