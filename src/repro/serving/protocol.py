"""The versioned JSON-lines wire protocol shared by both daemons.

``serving/daemon.py`` (sync) and ``serving/async_daemon.py`` (asyncio)
historically each carried their own copy of request parsing and error
encoding; this module is the single codec both now import, so the two
surfaces cannot drift — the same hostile frame yields the identical
``error_kind`` reply on either daemon.

Wire shape (one JSON object per line)::

    {"id": 1, "text": "select salary from celeries",
     "protocol_version": 1}
    {"id": 2, "session_id": "s-1", "turn": 1,
     "edit": {"kind": "redictate", "clause": "WHERE",
              "text": "where salary > 60000"}}

- ``protocol_version`` is optional on requests (assumed current when
  absent, so pre-versioning clients keep working) but **closed**: a
  present-but-unsupported version is rejected with
  ``error_kind="unsupported_protocol"`` before any other validation.
  Every reply — success or error — is stamped with the version it
  speaks.
- ``error_kind`` values come from the closed :data:`ERROR_KINDS`
  catalog; clients can switch on them without parsing prose.
- ``partial: true`` asks for clause-level partial frames (one line per
  decoded clause, ``"partial": true``) before the final reply.

The codec is transport-free: it maps ``dict`` ↔
:class:`~repro.api.QueryRequest`/:class:`~repro.api.QueryResponse` and
leaves line framing, health probes, and concurrency to the daemons.
"""

from __future__ import annotations

import secrets
from dataclasses import replace

from repro.api import ClauseEdit, QueryRequest, QueryResponse

#: The one protocol version this build speaks.  Bump when the wire
#: shape changes incompatibly; requests pinned to another version are
#: rejected with :data:`ERROR_UNSUPPORTED_PROTOCOL`.
PROTOCOL_VERSION = 1

# -- the closed error catalog -------------------------------------------------

#: Client-side protocol errors: malformed JSON, unknown keys, oversized
#: frames, invalid field values.  Runtime outcomes
#: (``timeout``/``failed``/``shed``) are *not* errors of this kind —
#: they are valid responses.
ERROR_INVALID_REQUEST = "invalid_request"
#: The request pinned a ``protocol_version`` this build does not speak.
ERROR_UNSUPPORTED_PROTOCOL = "unsupported_protocol"
#: A correction turn referenced a session the store does not hold
#: (never started, expired past its TTL, or evicted by the LRU bound).
ERROR_UNKNOWN_SESSION = "unknown_session"
#: A correction turn arrived out of order for its session (the wire
#: contract is strictly ``turn == last_turn + 1``).
ERROR_TURN_CONFLICT = "turn_conflict"
#: The serving side raised unexpectedly while decoding a session turn.
ERROR_INTERNAL = "internal"

#: Every ``error_kind`` a reply can carry — closed so clients can
#: exhaustively switch on it.
ERROR_KINDS = (
    ERROR_INVALID_REQUEST,
    ERROR_UNSUPPORTED_PROTOCOL,
    ERROR_UNKNOWN_SESSION,
    ERROR_TURN_CONFLICT,
    ERROR_INTERNAL,
)


class UnsupportedProtocolError(ValueError):
    """A request pinned a protocol version this build does not speak."""

    kind = ERROR_UNSUPPORTED_PROTOCOL


#: Request keys the decoder accepts — anything else is rejected loudly
#: (a typo'd ``dedline_ms`` silently serving without a deadline would
#: be worse than an error).
ALLOWED_REQUEST_KEYS = frozenset({
    "id",
    "text",
    "seed",
    "nbest",
    "deadline_ms",
    "overrides",
    "trace_id",
    "protocol_version",
    "session_id",
    "turn",
    "edit",
    "partial",
})


def error_reply(kind: str, message: str, request_id=None) -> dict:
    """One structured error frame; ``kind`` must be in the catalog."""
    if kind not in ERROR_KINDS:
        raise ValueError(
            f"unknown error kind {kind!r}; expected one of {ERROR_KINDS}"
        )
    return {
        "id": request_id,
        "error": message,
        "error_kind": kind,
        "protocol_version": PROTOCOL_VERSION,
    }


def invalid_request_reply(message: str, request_id=None) -> dict:
    """The structured error reply for an unusable request frame."""
    return error_reply(ERROR_INVALID_REQUEST, message, request_id)


def oversized_line_reply(max_line_bytes: int) -> dict:
    return invalid_request_reply(
        f"request line exceeds max_line_bytes={max_line_bytes}"
    )


def decode_request(data: dict) -> QueryRequest:
    """Build a :class:`QueryRequest` from one decoded wire object.

    ``deadline_ms`` (milliseconds, wire-friendly) maps to the request's
    ``deadline`` budget in seconds; ``overrides`` is an optional config
    override mapping.  Raises :class:`UnsupportedProtocolError` for a
    pinned-but-unsupported ``protocol_version`` and :class:`ValueError`
    (→ ``invalid_request``) for everything else unusable.
    """
    unknown = sorted(set(data) - ALLOWED_REQUEST_KEYS)
    if unknown:
        raise ValueError(f"unknown request key(s): {unknown}")
    version = data.get("protocol_version")
    if version is not None and version != PROTOCOL_VERSION:
        raise UnsupportedProtocolError(
            f"protocol_version {version!r} is not supported; this build "
            f"speaks version {PROTOCOL_VERSION}"
        )
    edit_data = data.get("edit")
    edit = None
    if edit_data is not None:
        edit = ClauseEdit.from_dict(edit_data)
    text = data.get("text")
    if text is None and edit is not None:
        # Correction turns carry the edit; the full text lives in the
        # session state, so the wire frame may omit it.
        text = ""
    if not isinstance(text, str) or (not text and edit is None):
        raise ValueError("request needs a non-empty 'text' string")
    deadline_ms = data.get("deadline_ms")
    trace_id = data.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ValueError("'trace_id' must be a string")
    session_id = data.get("session_id")
    if session_id is not None and (
        not isinstance(session_id, str) or not session_id
    ):
        raise ValueError("'session_id' must be a non-empty string")
    turn = data.get("turn", 0)
    if not isinstance(turn, int) or isinstance(turn, bool):
        raise ValueError("'turn' must be an integer")
    stream = data.get("partial", False)
    if not isinstance(stream, bool):
        raise ValueError("'partial' must be a boolean")
    return QueryRequest(
        text=text,
        seed=data.get("seed"),
        nbest=data.get("nbest"),
        deadline=deadline_ms / 1000.0 if deadline_ms is not None else None,
        overrides=data.get("overrides") or (),
        trace_id=trace_id,
        session_id=session_id,
        turn=turn,
        edit=edit,
        stream=stream,
    )


def encode_response(response: QueryResponse, request_id=None) -> dict:
    """The final reply frame for one served request."""
    out = response.to_dict()
    out["protocol_version"] = PROTOCOL_VERSION
    if request_id is not None:
        out["id"] = request_id
    return out


def partial_frames(response: QueryResponse, request_id=None) -> list[dict]:
    """The buffered clause-level partial frames preceding the final
    reply (empty unless the request asked ``partial: true``)."""
    frames = []
    for partial in response.partials:
        frame = dict(partial)
        frame["partial"] = True
        frame["protocol_version"] = PROTOCOL_VERSION
        frame["trace_id"] = response.request.trace_id
        frame["session_id"] = response.session_id
        frame["turn"] = response.turn
        if request_id is not None:
            frame["id"] = request_id
        frames.append(frame)
    return frames


def response_frames(response: QueryResponse, request_id=None) -> list[dict]:
    """Every wire frame one response produces: the partial frames (if
    streaming was requested) followed by the final reply."""
    frames = partial_frames(response, request_id)
    frames.append(encode_response(response, request_id))
    return frames


def ensure_trace_id(request: QueryRequest) -> QueryRequest:
    """The request with a trace id: the client's, or a fresh 64-bit hex
    id generated at the daemon edge."""
    if request.trace_id is not None:
        return request
    return replace(request, trace_id=secrets.token_hex(8))


def error_kind_of(error: BaseException) -> str:
    """The catalog entry for a decode-time exception (errors carrying a
    ``kind`` attribute keep it; everything else is ``invalid_request``)."""
    kind = getattr(error, "kind", ERROR_INVALID_REQUEST)
    return kind if kind in ERROR_KINDS else ERROR_INVALID_REQUEST


__all__ = [
    "ALLOWED_REQUEST_KEYS",
    "ERROR_INTERNAL",
    "ERROR_INVALID_REQUEST",
    "ERROR_KINDS",
    "ERROR_TURN_CONFLICT",
    "ERROR_UNKNOWN_SESSION",
    "ERROR_UNSUPPORTED_PROTOCOL",
    "PROTOCOL_VERSION",
    "UnsupportedProtocolError",
    "decode_request",
    "encode_response",
    "ensure_trace_id",
    "error_kind_of",
    "error_reply",
    "invalid_request_reply",
    "oversized_line_reply",
    "partial_frames",
    "response_frames",
]
