"""JSON-lines serving daemon with HTTP health/readiness probes.

``repro serve`` runs this: one JSON object per stdin line in, one JSON
object per stdout line out, until EOF.  The wire format is the
:meth:`~repro.api.QueryResponse.to_dict` summary plus the request's
``id`` echoed back, so callers can pipeline requests without waiting::

    {"id": 1, "text": "SELECT Salary FROM Employees", "seed": 7}
    {"id": 2, "text": "select salary from celeries"}
    {"id": 3, "text": "...", "deadline_ms": 1}

    {"id": 1, "outcome": "served", "sql": "...", ...}
    {"id": 2, "outcome": "served", ...}
    {"id": 3, "outcome": "timeout", "error": "deadline exceeded ...", ...}

A malformed or oversized line (see ``max_line_bytes``) produces
``{"error": ..., "error_kind": "invalid_request"}`` on stdout — the
daemon never dies on bad input, and the connection stays alive.
Requests are served serially in arrival order
— admission control and deadlines still apply, so a saturated or slow
queue degrades per the runtime's ladder rather than backing up
silently.

When ``health_port`` is non-zero a stdlib HTTP server on a daemon
thread answers:

- ``GET /healthz`` — 200 with the runtime's health snapshot (always,
  while the process lives): liveness.
- ``GET /readyz`` — 200 when artifacts are loaded and the queue has
  headroom, 503 otherwise: readiness.
- ``GET /metrics`` / ``GET /statusz`` — the live telemetry plane
  (Prometheus text / JSON operator snapshot), served when a
  :class:`~repro.serving.telemetry.TelemetryPlane` is attached; a
  dedicated ``telemetry_port`` can expose only these two.

Every request carries a ``trace_id``: supplied by the client on the
wire, or generated at this edge.  It is echoed on the reply, stamped
on every span the request opens, and follows the request into the
shard workers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO

from repro.api import QueryRequest
from repro.serving.protocol import (
    ERROR_INVALID_REQUEST,
    decode_request,
    ensure_trace_id,
    error_kind_of,
    error_reply,
    invalid_request_reply,
    oversized_line_reply,
    response_frames,
)
from repro.serving.runtime import ServingRuntime

#: Default bound on one JSON-lines request frame.  A frame beyond this
#: is answered with a structured ``invalid_request`` error instead of
#: being parsed (or worse, killing the daemon) — the connection stays
#: alive.
DEFAULT_MAX_LINE_BYTES = 1 << 20


def request_from_wire(data: dict) -> QueryRequest:
    """Compatibility alias of :func:`repro.serving.protocol.decode_request`."""
    return decode_request(data)


class _HealthHandler(BaseHTTPRequestHandler):
    """Serves the runtime's health snapshot; bound via ``server.runtime``."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        runtime: ServingRuntime = self.server.runtime  # type: ignore[attr-defined]
        telemetry = getattr(self.server, "telemetry", None)
        if telemetry is not None and self.path in ("/metrics", "/statusz"):
            from repro.serving.telemetry import telemetry_response

            status, content_type, body = telemetry_response(
                telemetry, self.path
            )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        health = runtime.health()
        if self.path == "/healthz":
            status = 200
        elif self.path == "/readyz":
            ready = (
                health["ready"]
                and health["inflight"] < health["queue_limit"]
                # Sharded daemons are ready only while the shard pool
                # has a live worker (a dead pool still serves degraded
                # via the in_process rung, but should shed new traffic
                # to a healthy replica).
                and health.get("shard_pool_ok", True)
            )
            status = 200 if ready else 503
        else:
            hint = (
                "/healthz, /readyz, /metrics or /statusz"
                if telemetry is not None
                else "/healthz or /readyz"
            )
            self.send_error(404, f"unknown probe (try {hint})")
            return
        body = json.dumps(health, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request access logging (stdout is the data plane)."""


def start_health_server(
    runtime: ServingRuntime, port: int, telemetry=None
) -> ThreadingHTTPServer:
    """Start the probe server on a daemon thread; shared by both daemons.

    With a :class:`~repro.serving.telemetry.TelemetryPlane` attached the
    same server also answers ``/metrics`` and ``/statusz``.
    """
    server = ThreadingHTTPServer(("127.0.0.1", port), _HealthHandler)
    server.runtime = runtime  # type: ignore[attr-defined]
    server.telemetry = telemetry  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="serve-health", daemon=True
    )
    thread.start()
    return server


class ServingDaemon:
    """Drives a :class:`ServingRuntime` over JSON-lines streams."""

    def __init__(
        self,
        runtime: ServingRuntime,
        *,
        health_port: int | None = None,
        telemetry_port: int | None = None,
        telemetry=None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        """``health_port``: ``None`` disables the probe server; ``0``
        binds an ephemeral port (read it back from
        :attr:`health_address`).  ``telemetry`` is an optional
        :class:`~repro.serving.telemetry.TelemetryPlane`; when present
        the probe server also answers ``/metrics``/``/statusz``, and a
        non-``None`` ``telemetry_port`` binds a second server exposing
        the same plane.  ``max_line_bytes`` bounds one request frame;
        oversized frames get an ``invalid_request`` error."""
        if max_line_bytes < 1:
            raise ValueError("max_line_bytes must be >= 1")
        self.runtime = runtime
        self.health_port = health_port
        self.telemetry_port = telemetry_port
        self.telemetry = telemetry
        self.max_line_bytes = max_line_bytes
        self._health_server: ThreadingHTTPServer | None = None
        self._telemetry_server: ThreadingHTTPServer | None = None

    @property
    def health_address(self) -> tuple[str, int] | None:
        """The bound (host, port) of the probe server, once started."""
        if self._health_server is None:
            return None
        return self._health_server.server_address[:2]

    @property
    def telemetry_address(self) -> tuple[str, int] | None:
        """The bound (host, port) of the dedicated telemetry server."""
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.server_address[:2]

    def start_health_server(self) -> None:
        if self.health_port is None or self._health_server is not None:
            return
        self._health_server = start_health_server(
            self.runtime, self.health_port, telemetry=self.telemetry
        )

    def start_telemetry_server(self) -> None:
        if (
            self.telemetry_port is None
            or self.telemetry is None
            or self._telemetry_server is not None
        ):
            return
        self._telemetry_server = start_health_server(
            self.runtime, self.telemetry_port, telemetry=self.telemetry
        )

    def stop_health_server(self) -> None:
        if self._health_server is not None:
            self._health_server.shutdown()
            self._health_server.server_close()
            self._health_server = None
        if self._telemetry_server is not None:
            self._telemetry_server.shutdown()
            self._telemetry_server.server_close()
            self._telemetry_server = None

    def handle_frames(self, line: str) -> list[dict]:
        """Serve one wire line; returns every reply frame in order.

        Most lines yield exactly one frame; a session request with
        ``partial: true`` yields one clause-level partial frame per
        decoded span followed by the final reply.  An empty line yields
        no frames.
        """
        line = line.strip()
        if not line:
            return []
        if len(line.encode("utf-8", "surrogatepass")) > self.max_line_bytes:
            return [oversized_line_reply(self.max_line_bytes)]
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("request must be a JSON object")
            request = request_from_wire(data)
        except (ValueError, TypeError) as error:
            return [
                error_reply(error_kind_of(error), str(error),
                            _request_id(line))
            ]
        request = ensure_trace_id(request)
        response = self.runtime.submit(request)
        return response_frames(response, request_id=data.get("id"))

    def handle_line(self, line: str) -> dict:
        """Serve one wire line; always returns the **final** JSON-ready
        reply dict (partial frames, if any, are dropped — use
        :meth:`handle_frames` for streaming)."""
        frames = self.handle_frames(line)
        return frames[-1] if frames else {}

    def run(self, stdin: IO[str], stdout: IO[str]) -> int:
        """Serve until ``stdin`` EOF; returns a process exit code."""
        if self.health_port is not None:
            self.start_health_server()
        self.start_telemetry_server()
        try:
            for line in stdin:
                for out in self.handle_frames(line):
                    stdout.write(json.dumps(out, sort_keys=True) + "\n")
                stdout.flush()
                # Stream sampled spans to the trace sink as requests
                # finish (no-op without a sink) — an orchestrator kill
                # then loses at most the final request's spans.
                self.runtime.flush_traces()
        finally:
            self.stop_health_server()
            # A clean EOF shutdown propagates through the runtime to
            # the service's shard pool (workers get the stop sentinel
            # and the shared segment is unlinked) — exiting must not
            # leak worker processes or /dev/shm segments.
            self.runtime.shutdown()
        return 0


def _request_id(line: str):
    """Best-effort id extraction for error replies on malformed lines."""
    try:
        data = json.loads(line)
        if isinstance(data, dict):
            return data.get("id")
    except ValueError:
        pass
    return None


__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "ERROR_INVALID_REQUEST",
    "ServingDaemon",
    "ensure_trace_id",
    "invalid_request_reply",
    "oversized_line_reply",
    "request_from_wire",
    "start_health_server",
]
