"""Resilient serving: deadlines, admission control, degraded modes.

Layer 5 of the architecture: :class:`ServingRuntime` wraps the batch
:class:`~repro.core.service.SpeakQLService` with per-request service
levels (deadline budgets enforced at stage boundaries, load shedding
under saturation, a degradation ladder of cheaper configurations, and
per-rung circuit breakers), and :class:`ServingDaemon` exposes it as a
JSON-lines daemon with HTTP health/readiness probes (``repro serve``).
"""

from repro.serving.daemon import ServingDaemon, request_from_wire
from repro.serving.runtime import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_LADDER,
    CircuitBreaker,
    Rung,
    ServingRuntime,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "Rung",
    "ServingDaemon",
    "ServingRuntime",
    "request_from_wire",
]
