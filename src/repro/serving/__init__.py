"""Resilient serving: deadlines, admission control, degraded modes.

Layer 5 of the architecture: :class:`ServingRuntime` wraps the batch
:class:`~repro.core.service.SpeakQLService` with per-request service
levels (deadline budgets enforced at stage boundaries, load shedding
under saturation, a degradation ladder of cheaper configurations, and
per-rung circuit breakers); :class:`ServingDaemon` exposes it as a
serial JSON-lines daemon with HTTP health/readiness probes (``repro
serve``), and :class:`AsyncServingDaemon` + :class:`MicroBatcher`
(``repro serve --async``) as an asyncio front end that coalesces
concurrent requests into micro-batches before dispatch.

Both daemons speak the shared versioned wire codec of
:mod:`repro.serving.protocol`, and correction sessions
(:mod:`repro.serving.sessions`) make the paper's clause-level
re-dictation loop incremental: a turn re-searches only the edited
clause span and splices cached decodes for the rest.
"""

from repro.serving.async_daemon import AsyncServingDaemon, run_async_daemon
from repro.serving.batcher import MicroBatcher, flush_by
from repro.serving.daemon import (
    DEFAULT_MAX_LINE_BYTES,
    ServingDaemon,
    ensure_trace_id,
    request_from_wire,
)
from repro.serving.protocol import (
    ERROR_KINDS,
    PROTOCOL_VERSION,
    decode_request,
    encode_response,
)
from repro.serving.sessions import (
    SessionDecoder,
    SessionStore,
    TurnConflictError,
    UnknownSessionError,
)
from repro.serving.telemetry import (
    AsyncTelemetryServer,
    TelemetryPlane,
    telemetry_response,
)
from repro.serving.runtime import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_LADDER,
    CircuitBreaker,
    Rung,
    ServingRuntime,
)

__all__ = [
    "AsyncServingDaemon",
    "AsyncTelemetryServer",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "DEFAULT_MAX_LINE_BYTES",
    "ERROR_KINDS",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "Rung",
    "ServingDaemon",
    "ServingRuntime",
    "SessionDecoder",
    "SessionStore",
    "TelemetryPlane",
    "TurnConflictError",
    "UnknownSessionError",
    "decode_request",
    "encode_response",
    "ensure_trace_id",
    "flush_by",
    "request_from_wire",
    "run_async_daemon",
    "telemetry_response",
]
