"""Asyncio JSON-lines server with a coalescing micro-batch front end.

:class:`AsyncServingDaemon` replaces the serial request loop of
:class:`~repro.serving.daemon.ServingDaemon` with an event loop that
accepts **concurrent** requests — pipelined on stdin and over any number
of TCP connections — and funnels them through a
:class:`~repro.serving.batcher.MicroBatcher`, so requests arriving
within the coalescing window are dispatched as one
:meth:`~repro.serving.runtime.ServingRuntime.submit_batch` call.

Wire format is unchanged (one JSON object per line, ``id`` echoed back;
see :mod:`repro.serving.daemon`), with two front-end differences:

- responses on a connection come back **as they finish**, not in
  request order — correlate by ``id`` (lockstep clients still work:
  one request in, one response out);
- protocol errors carry ``"error_kind": "invalid_request"`` and the
  connection survives them, including frames beyond ``max_line_bytes``
  (the TCP reader discards the oversized frame without buffering it).

Lifecycle: the daemon serves until stdin EOF (the same contract as the
serial daemon), then drains the batcher — pending requests flush with
reason ``drain`` — closes TCP connections, and shuts the runtime down.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import IO, AsyncIterator

from repro.serving.batcher import MicroBatcher
from repro.serving.daemon import DEFAULT_MAX_LINE_BYTES, start_health_server
from repro.serving.protocol import (
    decode_request,
    ensure_trace_id,
    error_kind_of,
    error_reply,
    oversized_line_reply,
    response_frames,
)
from repro.serving.runtime import ServingRuntime

#: Chunk size of the bounded TCP line reader.
_READ_CHUNK = 1 << 16

#: Sentinel yielded by the bounded reader for an oversized line.
_OVERSIZED = None


async def read_bounded_lines(
    reader: asyncio.StreamReader, max_line_bytes: int
) -> AsyncIterator[bytes | None]:
    """Yield newline-delimited frames, discarding oversized ones.

    A frame longer than ``max_line_bytes`` is consumed (never buffered
    whole — the reader holds at most ``max_line_bytes + _READ_CHUNK``
    bytes) and yielded as ``None`` so the caller can answer with a
    structured error while the connection stays alive.
    """
    buffer = bytearray()
    overflow = False
    while True:
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            if overflow:
                yield _OVERSIZED
            elif buffer:
                # Final line without a trailing newline.
                if len(buffer) > max_line_bytes:
                    yield _OVERSIZED
                else:
                    yield bytes(buffer)
            return
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                if overflow or len(buffer) > max_line_bytes:
                    overflow = True
                    buffer.clear()
                break
            if overflow:
                del buffer[: newline + 1]
                overflow = False
                yield _OVERSIZED
                continue
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            if len(line) > max_line_bytes:
                yield _OVERSIZED
            else:
                yield line


class AsyncServingDaemon:
    """Micro-batching JSON-lines daemon over stdin and/or TCP.

    Parameters mirror :class:`~repro.serving.daemon.ServingDaemon` plus
    the batcher knobs.  ``port`` enables the TCP listener (0 =
    ephemeral, read the bound address back from :attr:`tcp_address`);
    stdin remains the lifetime control either way.
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        *,
        health_port: int | None = None,
        telemetry_port: int | None = None,
        telemetry=None,
        port: int | None = None,
        host: str = "127.0.0.1",
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        deadline_slack_ms: float = 5.0,
        dispatch_workers: int = 2,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        metrics=None,
        tracer=None,
    ) -> None:
        if max_line_bytes < 1:
            raise ValueError("max_line_bytes must be >= 1")
        self.runtime = runtime
        self.health_port = health_port
        self.telemetry_port = telemetry_port
        self.telemetry = telemetry
        self.port = port
        self.host = host
        self.max_line_bytes = max_line_bytes
        self.batcher = MicroBatcher(
            runtime,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            deadline_slack_ms=deadline_slack_ms,
            dispatch_workers=dispatch_workers,
            metrics=metrics,
            tracer=tracer,
        )
        self._health_server = None
        self._telemetry_server = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._connection_tasks: set[asyncio.Task] = set()

    # -- addresses -----------------------------------------------------------

    @property
    def health_address(self) -> tuple[str, int] | None:
        if self._health_server is None:
            return None
        return self._health_server.server_address[:2]

    @property
    def telemetry_address(self) -> tuple[str, int] | None:
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.address

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        if self._tcp_server is None or not self._tcp_server.sockets:
            return None
        return self._tcp_server.sockets[0].getsockname()[:2]

    # -- request handling ----------------------------------------------------

    async def handle_frames(self, line: str) -> list[dict]:
        """Parse, batch-submit, and format one wire line as its ordered
        reply frames (partial frames, then the final reply)."""
        line = line.strip()
        if not line:
            return []
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("request must be a JSON object")
            request = decode_request(data)
        except (ValueError, TypeError) as error:
            request_id = None
            if isinstance(data := _maybe_dict(line), dict):
                request_id = data.get("id")
            return [error_reply(error_kind_of(error), str(error), request_id)]
        request = ensure_trace_id(request)
        response = await self.batcher.submit(request)
        # Stream sampled spans out as requests complete (no-op without
        # a trace sink on the runtime).
        self.runtime.flush_traces()
        return response_frames(response, request_id=data.get("id"))

    async def handle_line(self, line: str) -> dict:
        """Parse, batch-submit, and format one wire line (final reply
        only; partial frames are dropped — use :meth:`handle_frames`)."""
        frames = await self.handle_frames(line)
        return frames[-1] if frames else {}

    # -- stdin / stdout ------------------------------------------------------

    async def _stdin_loop(self, stdin: IO[str], stdout: IO[str]) -> None:
        """Read stdin lines, serve each as its own task, until EOF.

        Lines are read through the executor so a blocking ``readline``
        never stalls the loop; responses are written as they complete
        (atomic per line), so pipelined stdin requests batch together.
        """
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def serve_one(line: str) -> None:
            # Oversized stdin frames are length-checked post-read (text
            # streams cannot be chunk-bounded the way sockets are).
            if (
                len(line.encode("utf-8", "surrogatepass"))
                > self.max_line_bytes
            ):
                frames = [oversized_line_reply(self.max_line_bytes)]
            else:
                frames = await self.handle_frames(line)
            if not frames:
                return
            # One request's frames write contiguously (partials, then
            # the final reply) so interleaved requests stay parseable.
            async with write_lock:
                for out in frames:
                    stdout.write(json.dumps(out, sort_keys=True) + "\n")
                stdout.flush()

        while True:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            task = asyncio.create_task(serve_one(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks)

    # -- TCP -----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def reply(frames: list[dict]) -> None:
            if not frames:
                return
            payload = b"".join(
                (json.dumps(out, sort_keys=True) + "\n").encode("utf-8")
                for out in frames
            )
            async with write_lock:
                writer.write(payload)
                await writer.drain()

        async def serve_one(frame: bytes | None) -> None:
            try:
                if frame is _OVERSIZED:
                    await reply([oversized_line_reply(self.max_line_bytes)])
                    return
                await reply(
                    await self.handle_frames(frame.decode("utf-8", "replace"))
                )
            except ConnectionError:
                pass  # client went away mid-reply; nothing to tell it

        try:
            async for frame in read_bounded_lines(
                reader, self.max_line_bytes
            ):
                task = asyncio.create_task(serve_one(frame))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks)
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _track_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connection_tasks.add(task)
        task.add_done_callback(self._connection_tasks.discard)

    # -- lifecycle -----------------------------------------------------------

    async def run(
        self,
        stdin: IO[str],
        stdout: IO[str],
        *,
        announce: IO[str] | None = None,
    ) -> int:
        """Serve until stdin EOF; returns a process exit code.

        ``announce`` (usually stderr) receives the startup banner: the
        health URL, the TCP address when listening, then ``ready`` —
        the same contract smoke tests key on.
        """
        if self.health_port is not None and self._health_server is None:
            self._health_server = start_health_server(
                self.runtime, self.health_port
            )
            if announce is not None:
                host, port = self.health_address
                print(f"health: http://{host}:{port}", file=announce,
                      flush=True)
        if self.telemetry_port is not None and self.telemetry is not None:
            # Telemetry is served *on the event loop* — the only thread
            # that may read the batcher's loop-confined registry.
            from repro.serving.telemetry import AsyncTelemetryServer

            self._telemetry_server = AsyncTelemetryServer(
                self.telemetry, host=self.host, port=self.telemetry_port
            )
            await self._telemetry_server.start()
            if announce is not None:
                host, port = self.telemetry_address
                print(f"telemetry: http://{host}:{port}", file=announce,
                      flush=True)
        if self.port is not None:
            self._tcp_server = await asyncio.start_server(
                self._track_connection, self.host, self.port
            )
            if announce is not None:
                host, port = self.tcp_address
                print(f"tcp: {host}:{port}", file=announce, flush=True)
        if announce is not None:
            print("ready", file=announce, flush=True)
        try:
            await self._stdin_loop(stdin, stdout)
        finally:
            await self.shutdown()
        return 0

    async def shutdown(self) -> None:
        """Stop listeners, drain the batcher, shut the runtime down."""
        if self._telemetry_server is not None:
            await self._telemetry_server.close()
            self._telemetry_server = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._connection_tasks:
            # Give in-flight connections a grace period, then cancel: a
            # client that holds its socket open past stdin EOF must not
            # pin the daemon alive.
            done, pending = await asyncio.wait(
                list(self._connection_tasks), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.batcher.close()
        if self._health_server is not None:
            self._health_server.shutdown()
            self._health_server.server_close()
            self._health_server = None
        self.runtime.shutdown()


def _maybe_dict(line: str):
    """Best-effort re-parse for id extraction on request errors."""
    try:
        return json.loads(line)
    except ValueError:
        return None


def run_async_daemon(daemon: AsyncServingDaemon) -> int:
    """Blocking entry point: drive ``daemon`` on a fresh event loop."""
    return asyncio.run(daemon.run(sys.stdin, sys.stdout, announce=sys.stderr))


__all__ = [
    "AsyncServingDaemon",
    "read_bounded_lines",
    "run_async_daemon",
]
