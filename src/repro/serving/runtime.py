"""The resilient serving runtime: deadlines, shedding, degraded modes.

:class:`ServingRuntime` wraps a
:class:`~repro.core.service.SpeakQLService` and turns the batch
service's all-or-nothing contract ("every query succeeds or the batch
raises") into per-request service levels.  Every
:class:`~repro.api.QueryRequest` comes back as a
:class:`~repro.api.QueryResponse` whose **outcome** is first class:

``served``
    Answered at full fidelity by the requested configuration (rung 0).
``degraded``
    Answered, but by a cheaper rung of the :data:`degradation ladder
    <DEFAULT_LADDER>` — because an earlier rung failed, the rung's
    circuit breaker was open, or the request arrived under deadline
    pressure.
``shed``
    Rejected at admission: the bounded in-flight queue was full.  The
    request never executed.
``timeout``
    The deadline passed while the query was running; the pipeline
    stopped cooperatively at the next stage boundary
    (:class:`~repro.errors.DeadlineExceededError`).
``failed``
    Every rung that was tried raised; the last error is reported.

Deadlines are **cooperative**: a request's ``deadline`` is a relative
budget in seconds, converted to an absolute ``time.perf_counter()``
cutoff at admission and checked between pipeline stages (never inside
one), so a timed-out query stops at a clean boundary with no partial
state.

The **degradation ladder** is an ordered tuple of :class:`Rung` objects,
each naming a set of :class:`~repro.core.pipeline.SpeakQLConfig`
overrides that trade answer quality for latency and resilience.  Rung 0
is always the requested configuration; the default ladder then drops
the compiled kernel for the scalar flat kernel, shrinks ``top_k`` to 1,
and finally falls back to BDB-only pruning.  Derived pipelines share
the base pipeline's artifact bundle, so climbing a rung never re-runs
the offline step.

Each rung carries a deterministic **circuit breaker** generalizing the
DAP -> flat kernel fallback: after ``failure_threshold`` consecutive
failures a rung is skipped ("open") for the next ``cooldown_requests``
requests that consult it, then a single trial request is let through
("half-open"); success closes the breaker, failure re-opens it.  The
breaker counts requests, not wall-clock time, so trip/recover sequences
are reproducible in tests.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Iterable, Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.api import (
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_SERVED,
    OUTCOME_TIMEOUT,
    QueryRequest,
    QueryResponse,
    shed_response,
)
from repro.core.pipeline import SpeakQL
from repro.core.service import SpeakQLService
from repro.errors import DeadlineExceededError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_VALUES,
    CircuitBreaker,
)
from repro.observability import names as obs_names
from repro.observability.forensics import QueryRecord, Recorder
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACER, Tracer
from repro.serving.protocol import ERROR_INTERNAL
from repro.serving.sessions import SessionDecoder, SessionError, SessionStore

# -- the degradation ladder --------------------------------------------------


@dataclass(frozen=True)
class Rung:
    """One rung of the degradation ladder.

    ``name`` keys the rung's circuit breaker and metrics; ``overrides``
    are the :class:`~repro.core.pipeline.SpeakQLConfig` fields this rung
    forces (applied *over* any per-request overrides — degradation
    wins).
    """

    name: str
    overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )

    def overrides_dict(self) -> dict[str, object]:
        return dict(self.overrides)


#: The default ladder: requested config, then flat kernel, then flat
#: kernel with ``top_k=1``, then flat kernel + BDB-only pruning.  All
#: rungs produce *valid* answers (the kernels are bit-identical; the
#: cheaper rungs only shrink the candidate list and drop optimizations
#: that can break or slow down).
DEFAULT_LADDER: tuple[Rung, ...] = (
    Rung("requested"),
    Rung("flat_kernel", {"search_kernel": "flat"}),
    Rung("reduced_top_k", {"search_kernel": "flat", "top_k": 1}),
    Rung(
        "bdb_only",
        {
            "search_kernel": "flat",
            "top_k": 1,
            "use_bdb": True,
            "use_dap": False,
            "use_inv": False,
        },
    ),
)


# -- circuit breaker ---------------------------------------------------------
#
# The breaker grew a second consumer (the sharded search executor keeps
# one per shard) and now lives in :mod:`repro.resilience`; it is
# re-exported here because serving code and tests have always imported
# it from this module.


# -- the runtime -------------------------------------------------------------


class ServingRuntime:
    """Per-request serving over a shared :class:`SpeakQLService`.

    Parameters
    ----------
    service:
        The batch service to wrap; rung 0 with no per-request overrides
        runs on ``service.pipeline`` itself, so an unpressured runtime
        is bit-identical to ``service.run_batch``.
    queue_limit:
        Maximum requests in flight at once; request ``queue_limit + 1``
        is shed at admission.
    ladder:
        The degradation ladder (default :data:`DEFAULT_LADDER`).  Rung 0
        must be the requested configuration (empty overrides).
    degrade_below:
        Deadline-pressure threshold in seconds: a request whose budget
        is *below* this starts at rung 1 directly (skipping the
        expensive requested config), and is reported ``degraded``.
        ``None`` (default) disables pressure-based degradation.
    breaker:
        The shared :class:`CircuitBreaker` (a default one is built from
        ``breaker_threshold``/``breaker_cooldown`` when omitted).
    tracer / metrics:
        Serving-level observability handles.  The runtime wraps every
        request in a ``serve`` span and maintains the
        ``speakql_serving_*`` instruments (guarded by the admission
        lock — unlike pipeline metrics these are shared across worker
        threads).
    """

    def __init__(
        self,
        service: SpeakQLService,
        *,
        queue_limit: int = 16,
        ladder: Iterable[Rung] = DEFAULT_LADDER,
        degrade_below: float | None = None,
        breaker: CircuitBreaker | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        window_seconds: float = 60.0,
        window_slots: int = 6,
        clock=time.monotonic,
        trace_sample_rate: float = 1.0,
        trace_sink=None,
        sample_rng: random.Random | None = None,
        session_ttl: float = 900.0,
        session_limit: int = 64,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        self.service = service
        self.queue_limit = queue_limit
        self.ladder = tuple(ladder)
        if not self.ladder:
            raise ValueError("the degradation ladder needs at least one rung")
        if self.ladder[0].overrides:
            raise ValueError(
                "rung 0 must be the requested configuration (no overrides)"
            )
        if (
            self.ladder == DEFAULT_LADDER
            and getattr(service, "search_executor", None) is not None
        ):
            # A sharded service gets one extra rung between "requested"
            # and the flat kernel: the same compiled kernel run in
            # process, so a dead/ sick worker pool degrades to identical
            # answers before any quality is traded away.
            self.ladder = (
                self.ladder[0],
                Rung("in_process", {"use_sharded": False}),
                *self.ladder[1:],
            )
        self.degrade_below = degrade_below
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_requests=breaker_cooldown,
        )
        self.tracer = tracer if tracer is not None else service.pipeline.tracer
        self.metrics = metrics
        self.window_seconds = float(window_seconds)
        self.window_slots = int(window_slots)
        self.trace_sample_rate = float(trace_sample_rate)
        self.trace_sink = trace_sink
        self._clock = clock
        self._started = clock()
        self._sample_rng = sample_rng if sample_rng is not None else random.Random()
        self._lock = threading.Lock()
        self._inflight = 0
        self._shed = 0
        self._outcomes = {outcome: 0 for outcome in
                          ("served", "degraded", "shed", "timeout", "failed")}
        self._rungs: dict[int, int] = {}
        self._pipelines: dict[tuple, SpeakQL] = {}
        self.sessions = SessionStore(
            limit=session_limit, ttl_seconds=session_ttl, clock=clock
        )
        self._session_decoder: SessionDecoder | None = None
        self._session_evictions_seen = {"lru": 0, "ttl": 0}

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        query: object,
        *,
        record: QueryRecord | None = None,
        pipeline_metrics: MetricsRegistry | None = None,
    ) -> QueryResponse:
        """Serve one request end to end; never raises for request errors.

        ``pipeline_metrics`` (optional) receives the pipeline's own
        stage/search instruments; confine it to the calling thread (the
        runtime's serving counters live in ``self.metrics`` and are
        lock-guarded instead).
        """
        request = QueryRequest.from_legacy(query)
        with self._lock:
            self._count(obs_names.SERVING_REQUESTS_TOTAL)
            if self._inflight >= self.queue_limit:
                self._shed += 1
                self._outcomes["shed"] += 1
                self._count(
                    obs_names.SERVING_OUTCOMES_TOTAL, outcome="shed"
                )
                return shed_response(request)
            self._inflight += 1
            self._gauge(obs_names.SERVING_QUEUE_DEPTH, self._inflight)
        try:
            response = self._execute(request, record, pipeline_metrics)
        finally:
            with self._lock:
                self._inflight -= 1
                self._gauge(obs_names.SERVING_QUEUE_DEPTH, self._inflight)
        with self._lock:
            self._account_response(response)
        return response

    def submit_batch(
        self, queries: Iterable[object]
    ) -> list[QueryResponse]:
        """Serve one coalesced micro-batch, in arrival order.

        The per-request semantics are exactly :meth:`submit` — the same
        ``_execute`` ladder walk produces bit-identical responses — but
        the admission and accounting lock round-trips are batched: one
        acquisition admits every request that fits (requests beyond the
        queue limit are shed, preserving backpressure), and one folds
        the outcome/rung/latency counters back in at the end.  This is
        the dispatch target of
        :class:`~repro.serving.batcher.MicroBatcher`: the front end pays
        the executor hand-off and lock traffic once per batch instead of
        once per request.

        Requests execute serially in arrival order, and the wall time a
        request spends waiting behind its batch-mates is charged against
        its ``deadline`` budget — a deadline is an end-to-end promise to
        the client, and being coalesced must not quietly extend it.
        """
        requests = [QueryRequest.from_legacy(q) for q in queries]
        if not requests:
            return []
        responses: list[QueryResponse | None] = [None] * len(requests)
        admitted: list[int] = []
        with self._lock:
            for index, request in enumerate(requests):
                self._count(obs_names.SERVING_REQUESTS_TOTAL)
                if self._inflight >= self.queue_limit:
                    self._shed += 1
                    self._outcomes["shed"] += 1
                    self._count(
                        obs_names.SERVING_OUTCOMES_TOTAL, outcome="shed"
                    )
                    responses[index] = shed_response(request)
                else:
                    self._inflight += 1
                    admitted.append(index)
            self._gauge(obs_names.SERVING_QUEUE_DEPTH, self._inflight)
        executed = 0
        batch_start = time.perf_counter()
        try:
            for index in admitted:
                request = requests[index]
                if request.deadline is not None:
                    waited = time.perf_counter() - batch_start
                    request = replace(
                        request,
                        deadline=max(0.0, request.deadline - waited),
                    )
                responses[index] = self._execute(request, None, None)
                executed += 1
        finally:
            # An unexpected escape (not a request failure — _execute
            # absorbs those) must still release the admitted slots and
            # account for what did run.
            with self._lock:
                self._inflight -= len(admitted)
                self._gauge(obs_names.SERVING_QUEUE_DEPTH, self._inflight)
                for index in admitted[:executed]:
                    self._account_response(responses[index])
        return responses

    def serve_batch(
        self,
        queries: Iterable[object],
        *,
        workers: int = 1,
        recorder: Recorder | None = None,
    ) -> list[QueryResponse]:
        """Serve a batch, preserving input order.

        With no deadlines, no pressure, and the default configuration
        every response is ``served`` at rung 0 and ``[r.output for r in
        responses]`` is bit-identical to ``service.run_batch`` on the
        same inputs — the runtime adds service levels, never answers.
        """
        requests = [QueryRequest.from_legacy(q) for q in queries]
        records: list[QueryRecord | None]
        if recorder is not None:
            records = [recorder.start_request(req) for req in requests]
        else:
            records = [None] * len(requests)
        items = list(zip(requests, records))
        if workers <= 1 or len(items) <= 1:
            return [
                self.submit(req, record=rec) for req, rec in items
            ]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda item: self.submit(item[0], record=item[1]),
                         items)
            )

    # -- execution -----------------------------------------------------------

    def _execute(
        self,
        request: QueryRequest,
        record: QueryRecord | None,
        pipeline_metrics: MetricsRegistry | None,
    ) -> QueryResponse:
        admitted = time.perf_counter()
        deadline_at = (
            admitted + request.deadline
            if request.deadline is not None
            else None
        )
        start_rung = 0
        if (
            self.degrade_below is not None
            and request.deadline is not None
            and request.deadline < self.degrade_below
            and len(self.ladder) > 1
        ):
            start_rung = 1
        attempts = 0
        last_error: BaseException | None = None
        tracer = self._request_tracer()
        bind_trace = tracer.enabled and request.trace_id is not None
        if bind_trace:
            tracer.set_trace_id(request.trace_id)
        try:
            if request.session_id is not None:
                response = self._execute_session(
                    request, admitted, deadline_at, record, tracer
                )
            else:
                response = self._run_ladder(
                    request, start_rung, deadline_at, admitted, attempts,
                    last_error, record, pipeline_metrics, tracer,
                )
        finally:
            if bind_trace:
                tracer.set_trace_id(None)
        return response

    def _execute_session(
        self,
        request: QueryRequest,
        admitted: float,
        deadline_at: float | None,
        record: QueryRecord | None,
        tracer: Tracer,
    ) -> QueryResponse:
        """Serve one correction-session turn via the incremental decoder.

        The session path skips the degradation ladder: a clause-span
        decode is already the cheap path, and splicing cached spans must
        stay bit-identical to a cold decode — a rung swap mid-session
        would silently break that.  Session-contract violations come
        back as ``failed`` responses carrying the wire protocol's
        ``error_kind`` (``unknown_session`` / ``turn_conflict``), never
        as exceptions.
        """
        decoder = self._session_decoder_instance()
        turn_kind = "cold" if request.edit is None else request.edit.kind
        result = None
        with tracer.span(
            "session.turn", mode=request.mode,
            session_id=request.session_id, turn=request.turn,
        ) as span:
            try:
                result = decoder.decode(
                    request,
                    deadline_at=deadline_at,
                    clock=time.perf_counter,
                    tracer=tracer if tracer.enabled else None,
                    collect_partials=request.stream,
                )
            except SessionError as error:
                response = self._finish(
                    request, OUTCOME_FAILED, rung=0, attempts=1,
                    admitted=admitted, error=str(error), record=record,
                )
                response = replace(response, error_kind=error.kind)
            except DeadlineExceededError as error:
                response = self._finish(
                    request, OUTCOME_TIMEOUT, rung=0, attempts=1,
                    admitted=admitted, error=str(error), record=record,
                )
            except Exception as error:  # noqa: BLE001 - serving boundary
                response = self._finish(
                    request, OUTCOME_FAILED, rung=0, attempts=1,
                    admitted=admitted, error=str(error), record=record,
                )
                response = replace(response, error_kind=ERROR_INTERNAL)
            else:
                span.set("spans", result.spans_total)
                span.set("reused", len(result.reused_spans))
                response = self._finish(
                    request, OUTCOME_SERVED, rung=0, attempts=1,
                    admitted=admitted, output=result.output, record=record,
                )
                response = replace(
                    response,
                    reused_spans=result.reused_spans,
                    partials=result.partials,
                )
            span.set("outcome", response.outcome)
        if record is not None:
            record.session_id = request.session_id
            record.turn = request.turn
            record.reused_spans = response.reused_spans
        self._session_metrics(turn_kind, result, response.wall_seconds)
        return response

    def _session_decoder_instance(self) -> SessionDecoder:
        """The lazily built session decoder (clause indexes build on the
        first session request, sharing the service's artifact bundle)."""
        with self._lock:
            if self._session_decoder is None:
                from repro.core.clauses import ClauseSpeakQL

                pipeline = self.service.pipeline
                clauses = ClauseSpeakQL(
                    catalog=pipeline.catalog,
                    engine=pipeline.engine,
                    phonetic_index=pipeline.phonetic_index,
                    artifacts=pipeline.artifacts,
                )
                self._session_decoder = SessionDecoder(
                    clauses, self.sessions
                )
            return self._session_decoder

    def _session_metrics(
        self, turn_kind: str, result, wall_seconds: float
    ) -> None:
        """Fold one session turn into the serving instruments."""
        if self.metrics is None:
            return
        stats = self.sessions.stats()
        with self._lock:
            self._count(obs_names.SESSION_TURNS_TOTAL, kind=turn_kind)
            if result is not None:
                decoded = result.spans_total - len(result.reused_spans)
                if decoded:
                    self.metrics.counter(
                        obs_names.SESSION_SPANS_DECODED_TOTAL
                    ).inc(decoded)
                if result.reused_spans:
                    self.metrics.counter(
                        obs_names.SESSION_SPANS_REUSED_TOTAL
                    ).inc(len(result.reused_spans))
            self._gauge(obs_names.SESSION_LIVE, stats["live"])
            for reason, key in (
                ("lru", "evicted_lru_total"), ("ttl", "expired_total"),
            ):
                delta = stats[key] - self._session_evictions_seen[reason]
                if delta > 0:
                    self.metrics.counter(
                        obs_names.SESSION_EVICTIONS_TOTAL, reason=reason
                    ).inc(delta)
                    self._session_evictions_seen[reason] = stats[key]
            self.metrics.histogram(
                obs_names.SESSION_TURN_SECONDS
            ).observe(wall_seconds)

    def _run_ladder(
        self,
        request: QueryRequest,
        start_rung: int,
        deadline_at: float | None,
        admitted: float,
        attempts: int,
        last_error: BaseException | None,
        record: QueryRecord | None,
        pipeline_metrics: MetricsRegistry | None,
        tracer: Tracer,
    ) -> QueryResponse:
        with tracer.span("serve", mode=request.mode) as span:
            for index in range(start_rung, len(self.ladder)):
                rung = self.ladder[index]
                if deadline_at is not None and (
                    time.perf_counter() >= deadline_at
                ):
                    response = self._finish(
                        request, OUTCOME_TIMEOUT, rung=index,
                        attempts=attempts, admitted=admitted,
                        error=f"deadline exceeded before rung {rung.name!r}",
                        record=record,
                    )
                    break
                if not self.breaker.allow(rung.name):
                    self._breaker_metrics(rung.name)
                    continue
                attempts += 1
                try:
                    output = self._attempt(
                        request, index, deadline_at, record,
                        pipeline_metrics, tracer,
                    )
                except DeadlineExceededError as error:
                    # Ran out of budget mid-flight: terminal by
                    # definition (no budget left for a cheaper rung).
                    # The breaker is *not* charged — the rung did not
                    # malfunction, the clock ran out.
                    response = self._finish(
                        request, OUTCOME_TIMEOUT, rung=index,
                        attempts=attempts, admitted=admitted,
                        error=str(error), record=record,
                    )
                    break
                except Exception as error:  # noqa: BLE001 - ladder boundary
                    last_error = error
                    tripped = self.breaker.record_failure(rung.name)
                    if tripped:
                        self._count_locked(
                            obs_names.SERVING_BREAKER_TRIPS_TOTAL,
                            stage=rung.name,
                        )
                    self._breaker_metrics(rung.name)
                    continue
                self.breaker.record_success(rung.name)
                self._breaker_metrics(rung.name)
                outcome = (
                    OUTCOME_SERVED if index == 0 else OUTCOME_DEGRADED
                )
                response = self._finish(
                    request, outcome, rung=index, attempts=attempts,
                    admitted=admitted, output=output, record=record,
                )
                break
            else:
                detail = (
                    f"all {len(self.ladder) - start_rung} rung(s) failed"
                    + (f"; last error: {last_error}" if last_error else
                       " (every rung's breaker was open)")
                )
                response = self._finish(
                    request, OUTCOME_FAILED, rung=len(self.ladder) - 1,
                    attempts=attempts, admitted=admitted, error=detail,
                    record=record,
                )
            span.set("outcome", response.outcome)
            span.set("rung", response.rung)
            span.set("attempts", response.attempts)
        return response

    def _attempt(
        self,
        request: QueryRequest,
        rung_index: int,
        deadline_at: float | None,
        record: QueryRecord | None,
        pipeline_metrics: MetricsRegistry | None,
        tracer: Tracer | None = None,
    ):
        tracer = tracer if tracer is not None else self.tracer
        pipeline = self._pipeline_for(request, rung_index)
        if request.seed is None:
            return pipeline.correct_transcription(
                request.text,
                tracer=tracer,
                metrics=pipeline_metrics,
                record=record,
                deadline=deadline_at,
            )
        return pipeline.query_from_speech(
            request.text,
            seed=request.seed,
            nbest=request.nbest,
            voice=request.speaker,
            tracer=tracer,
            metrics=pipeline_metrics,
            record=record,
            deadline=deadline_at,
        )

    def _request_tracer(self) -> Tracer:
        """The tracer this request gets: the runtime's own, or the
        shared :data:`NULL_TRACER` when the sampling coin says no."""
        tracer = self.tracer
        if not tracer.enabled:
            return tracer
        if self.trace_sample_rate >= 1.0:
            return tracer
        if self.trace_sample_rate <= 0.0:
            return NULL_TRACER
        if self._sample_rng.random() < self.trace_sample_rate:
            return tracer
        return NULL_TRACER

    def _pipeline_for(self, request: QueryRequest, rung_index: int) -> SpeakQL:
        """The pipeline serving ``request`` at ladder rung ``rung_index``.

        Rung 0 with no per-request overrides is the base pipeline
        itself — the bit-identity guarantee.  Every other combination is
        a derived pipeline over the *same* artifact bundle, built once
        and cached by its effective override set.
        """
        rung = self.ladder[rung_index]
        merged = dict(request.overrides)
        merged.update(rung.overrides_dict())  # degradation wins
        if not merged:
            return self.service.pipeline
        key = tuple(sorted(merged.items()))
        with self._lock:
            pipeline = self._pipelines.get(key)
        if pipeline is not None:
            return pipeline
        base = self.service.pipeline
        config = base.config.with_overrides(merged)
        pipeline = SpeakQL(
            base.catalog,
            engine=base.engine,
            structure_index=base.structure_index,
            config=config,
            phonetic_index=base.phonetic_index,
            artifacts=base.artifacts,
            search_executor=base.search_executor,
        )
        with self._lock:
            return self._pipelines.setdefault(key, pipeline)

    def _finish(
        self,
        request: QueryRequest,
        outcome: str,
        *,
        rung: int,
        attempts: int,
        admitted: float,
        output=None,
        error: str | None = None,
        record: QueryRecord | None = None,
    ) -> QueryResponse:
        return QueryResponse(
            request=request,
            outcome=outcome,
            output=output,
            record=record,
            rung=rung,
            attempts=attempts,
            error=error,
            wall_seconds=time.perf_counter() - admitted,
        )

    # -- health & metrics ----------------------------------------------------

    def health(self) -> dict:
        """A JSON-ready liveness/readiness snapshot (daemon probes)."""
        with self._lock:
            outcomes = dict(self._outcomes)
            inflight = self._inflight
        executor = getattr(self.service, "search_executor", None)
        shards = executor.health() if executor is not None else None
        return {
            "status": "ok",
            "ready": self.service.artifacts is not None,
            "inflight": inflight,
            "queue_limit": self.queue_limit,
            "outcomes": outcomes,
            "breakers": self.breaker.states(),
            "ladder": [rung.name for rung in self.ladder],
            "shards": shards,
            "sessions": {
                "live": len(self.sessions),
                "limit": self.sessions.limit,
            },
            # Readiness as far as the shard pool is concerned: an
            # unsharded service is trivially ok; a sharded one needs at
            # least one populated shard worker alive (a dead pool still
            # *serves* — via the in_process rung — but is not "ready").
            "shard_pool_ok": executor is None or executor.alive,
        }

    def statusz(self) -> dict:
        """A JSON-ready operator snapshot for ``GET /statusz``.

        Everything :meth:`health` reports, plus uptime, queue depth vs
        capacity, per-rung serve counts, per-rung and per-shard breaker
        states, and rolling p50/p95/p99 end-to-end latency from the
        windowed histogram (alongside the cumulative-since-start
        figures).
        """
        now = self._clock()
        rolling = cumulative = None
        with self._lock:
            outcomes = dict(self._outcomes)
            inflight = self._inflight
            rungs = {str(r): n for r, n in sorted(self._rungs.items())}
            if self.metrics is not None:
                rolling = self.metrics.rolling_histogram(
                    obs_names.SERVING_E2E_WINDOW_SECONDS,
                    window_seconds=self.window_seconds,
                    slots=self.window_slots,
                    clock=self._clock,
                ).snapshot(now)
                cumulative = self.metrics.histogram(obs_names.SERVING_SECONDS)
        executor = getattr(self.service, "search_executor", None)

        def _percentiles(histogram) -> dict:
            if histogram is None or histogram.count == 0:
                return {"count": 0, "p50_ms": None, "p95_ms": None,
                        "p99_ms": None}
            return {
                "count": histogram.count,
                "p50_ms": round(histogram.quantile(0.50) * 1000.0, 3),
                "p95_ms": round(histogram.quantile(0.95) * 1000.0, 3),
                "p99_ms": round(histogram.quantile(0.99) * 1000.0, 3),
            }

        return {
            "status": "ok",
            "ready": self.service.artifacts is not None,
            "uptime_seconds": round(now - self._started, 3),
            "queue": {"depth": inflight, "capacity": self.queue_limit},
            "outcomes": outcomes,
            "ladder": {
                "rungs": [rung.name for rung in self.ladder],
                "served_by_rung": rungs,
                "breakers": self.breaker.states(),
            },
            "shards": executor.health() if executor is not None else None,
            "shard_pool_ok": executor is None or executor.alive,
            "sessions": self.sessions.stats(),
            "latency": {
                "window_seconds": self.window_seconds,
                "rolling": _percentiles(rolling),
                "cumulative": _percentiles(cumulative),
            },
            "trace": {
                "sample_rate": self.trace_sample_rate,
                "sink": (
                    str(self.trace_sink.path)
                    if self.trace_sink is not None else None
                ),
            },
        }

    def flush_traces(self) -> int:
        """Drain finished spans into the trace sink (no-op without one).

        Only spans carrying a ``trace_id`` attribute — i.e. belonging to
        a sampled, correlated request — are written; the rest are
        discarded with the drain.  Returns the spans written.
        """
        if self.trace_sink is None or not self.tracer.enabled:
            return 0
        spans = self.tracer.drain()
        keep = [
            span.to_dict()
            for span in spans
            if span.attributes.get("trace_id") is not None
        ]
        return self.trace_sink.write_spans(keep)

    def shutdown(self) -> None:
        """Release owned resources (the service's shard pool, if any),
        flushing any traces still buffered on the tracer first."""
        try:
            self.flush_traces()
        finally:
            self.service.close()

    def _account_response(self, response: QueryResponse) -> None:
        """Fold one finished response into the counters; caller holds
        ``self._lock``."""
        self._outcomes[response.outcome] += 1
        self._count(obs_names.SERVING_OUTCOMES_TOTAL,
                    outcome=response.outcome)
        if response.ok:
            self._rungs[response.rung] = (
                self._rungs.get(response.rung, 0) + 1
            )
            self._count(obs_names.SERVING_RUNG_TOTAL,
                        rung=str(response.rung))
        self._observe_e2e(response.wall_seconds)

    def _observe_e2e(self, value: float) -> None:
        """Record one end-to-end latency into both the cumulative and
        the rolling-window histogram; caller holds ``self._lock``."""
        if self.metrics is None:
            return
        self.metrics.histogram(obs_names.SERVING_SECONDS).observe(value)
        self.metrics.rolling_histogram(
            obs_names.SERVING_E2E_WINDOW_SECONDS,
            window_seconds=self.window_seconds,
            slots=self.window_slots,
            clock=self._clock,
        ).observe(value)

    def _count(self, name: str, **labels: str) -> None:
        """Bump a serving counter; caller holds ``self._lock``."""
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    def _count_locked(self, name: str, **labels: str) -> None:
        with self._lock:
            self._count(name, **labels)

    def _gauge(self, name: str, value: float, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, **labels).set(value)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _breaker_metrics(self, rung_name: str) -> None:
        if self.metrics is None:
            return
        state = self.breaker.state(rung_name)
        with self._lock:
            self._gauge(
                obs_names.SERVING_BREAKER_STATE,
                BREAKER_STATE_VALUES[state],
                stage=rung_name,
            )


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_VALUES",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "Rung",
    "ServingRuntime",
]
