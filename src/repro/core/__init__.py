"""SpeakQL core: artifacts (offline), stages (online), service (batch).

The end-to-end pipeline of Figure 2 is layered as shared immutable
:class:`~repro.core.artifacts.SpeakQLArtifacts`, composable per-query
stages (:mod:`repro.core.stages`), and the parallel batch
:class:`~repro.core.service.SpeakQLService`; :class:`SpeakQL` is the
backward-compatible facade over the first two.
"""

from repro.api import (
    OUTCOMES,
    BatchQueryError,
    QueryRequest,
    QueryResponse,
)
from repro.core.artifacts import SpeakQLArtifacts
from repro.core.pipeline import SpeakQL, SpeakQLConfig
from repro.core.result import (
    LITERAL_STAGE,
    MASK_STAGE,
    STRUCTURE_STAGE,
    TRANSCRIBE_STAGE,
    ComponentTimings,
    SpeakQLOutput,
)
from repro.core.service import BatchRequest, SpeakQLService
from repro.core.stages import PipelineStage, QueryContext, run_stages

__all__ = [
    "SpeakQL",
    "SpeakQLConfig",
    "SpeakQLOutput",
    "ComponentTimings",
    "SpeakQLArtifacts",
    "SpeakQLService",
    "BatchRequest",
    "BatchQueryError",
    "QueryRequest",
    "QueryResponse",
    "OUTCOMES",
    "PipelineStage",
    "QueryContext",
    "run_stages",
    "TRANSCRIBE_STAGE",
    "MASK_STAGE",
    "STRUCTURE_STAGE",
    "LITERAL_STAGE",
]
