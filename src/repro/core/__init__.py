"""SpeakQL core: the end-to-end pipeline of Figure 2."""

from repro.core.pipeline import SpeakQL, SpeakQLConfig
from repro.core.result import ComponentTimings, SpeakQLOutput

__all__ = ["SpeakQL", "SpeakQLConfig", "SpeakQLOutput", "ComponentTimings"]
