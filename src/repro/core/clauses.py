"""Clause-level dictation (paper Section 5).

The interface lets users dictate or re-dictate one clause at a time; the
pilot study found this crucial for long queries (human working memory
holds ~10 seconds of phrase, Appendix F.2).  Structure determination for
a clause fragment uses a *clause grammar* — the subset grammar restarted
at the clause's nonterminal (S, F, W, or the trailing-clause G) — so even
queries whose full structure exceeds the whole-query index remain
searchable clause by clause.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.asr.engine import SimulatedAsrEngine, make_custom_engine
from repro.grammar.cfg import Grammar
from repro.grammar.speakql_grammar import F, G, S, W, build_speakql_grammar
from repro.grammar.vocabulary import tokenize_sql
from repro.interface.display import Clause, split_clauses
from repro.literal.determiner import LiteralDeterminer
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog
from repro.structure.indexer import StructureIndex
from repro.structure.masking import preprocess_transcription
from repro.structure.search import StructureSearchEngine

if TYPE_CHECKING:
    from repro.core.artifacts import SpeakQLArtifacts


class ClauseKind(enum.Enum):
    """Grammar entry points for clause dictation."""

    SELECT = "select"
    FROM = "from"
    WHERE = "where"
    TAIL = "tail"  # GROUP BY / ORDER BY / LIMIT fragments


#: Which clause grammar serves each display clause — public so the
#: serving layer's session decoder segments exactly like dictation.
CLAUSE_TO_KIND = {
    Clause.SELECT: ClauseKind.SELECT,
    Clause.FROM: ClauseKind.FROM,
    Clause.WHERE: ClauseKind.WHERE,
    Clause.GROUP_BY: ClauseKind.TAIL,
    Clause.ORDER_BY: ClauseKind.TAIL,
    Clause.LIMIT: ClauseKind.TAIL,
}

#: Backwards-compatible private alias.
_CLAUSE_TO_KIND = CLAUSE_TO_KIND

_KIND_START = {
    ClauseKind.SELECT: S,
    ClauseKind.FROM: F,
    ClauseKind.WHERE: W,
    ClauseKind.TAIL: G,
}


def clause_grammar(kind: ClauseKind) -> Grammar:
    """The subset grammar restarted at a clause nonterminal."""
    full = build_speakql_grammar()
    return Grammar(start=_KIND_START[kind], productions=full.productions)


@dataclass
class ClauseSpeakQL:
    """Clause-by-clause dictation over per-clause structure indexes.

    Indexes are built lazily per clause kind (the WHERE-clause language
    is the largest; SELECT/FROM/TAIL are tiny).  Pass a shared
    ``artifacts`` bundle to reuse its per-clause indexes, engine, and
    per-catalog phonetic index across pipelines.
    """

    catalog: Catalog
    engine: SimulatedAsrEngine | None = None
    max_clause_tokens: int = 18
    phonetic_index: PhoneticIndex | None = None
    artifacts: "SpeakQLArtifacts | None" = None
    _indexes: dict[ClauseKind, StructureIndex] = field(
        default_factory=dict, repr=False
    )
    _searchers: dict[ClauseKind, StructureSearchEngine] = field(
        default_factory=dict, repr=False
    )
    _determiner: LiteralDeterminer = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = (
                self.artifacts.engine if self.artifacts else make_custom_engine()
            )
        if self.phonetic_index is None:
            if self.artifacts is not None:
                self.phonetic_index = self.artifacts.phonetic_index(self.catalog)
            else:
                self.phonetic_index = PhoneticIndex.from_catalog(self.catalog)
        self._determiner = LiteralDeterminer(
            catalog=self.catalog,
            index=self.phonetic_index,
        )

    def _clause_index(self, kind: ClauseKind) -> StructureIndex:
        if self.artifacts is not None:
            return self.artifacts.clause_index(kind, self.max_clause_tokens)
        index = self._indexes.get(kind)
        if index is None:
            grammar = clause_grammar(kind)
            structures = grammar.enumerate_strings(self.max_clause_tokens)
            index = StructureIndex.from_structures(structures)
            self._indexes[kind] = index
        return index

    def _searcher(self, kind: ClauseKind) -> StructureSearchEngine:
        searcher = self._searchers.get(kind)
        if searcher is None:
            searcher = StructureSearchEngine(index=self._clause_index(kind))
            self._searchers[kind] = searcher
        return searcher

    # -- public API --------------------------------------------------------

    def dictate_clause(
        self,
        clause_sql: str,
        kind: ClauseKind,
        seed: int,
        tables_context: list[str] | None = None,
    ) -> str:
        """Dictate one clause and return its corrected text.

        ``tables_context`` carries the FROM tables already on the display
        so attribute candidates are narrowed exactly as in whole-query
        mode.
        """
        assert self.engine is not None
        asr = self.engine.transcribe(clause_sql, seed=seed, nbest=1)
        return self.correct_clause_transcription(
            asr.text, kind, tables_context=tables_context
        )

    def correct_clause_transcription(
        self,
        transcription: str,
        kind: ClauseKind,
        tables_context: list[str] | None = None,
    ) -> str:
        """Structure + literal determination for a clause fragment."""
        sql, _, _ = self.decode_clause(
            transcription, kind, tables_context=tables_context
        )
        return sql

    def decode_clause(
        self,
        transcription: str,
        kind: ClauseKind,
        *,
        k: int = 1,
        tables_context: list[str] | None = None,
    ):
        """Decode one clause span and expose the search evidence.

        Returns ``(sql, results, stats)``: the corrected clause text,
        the top-``k`` :class:`~repro.structure.search.SearchResult`
        candidates, and the span's
        :class:`~repro.structure.search.SearchStats` (``None`` only
        when masking produced no tokens).  This is the serving layer's
        session entry point — a cached span replays ``results``/``stats``
        verbatim, so splicing them is bit-identical to re-decoding.

        ``tables_context`` narrows attribute candidates to the display's
        FROM tables, exactly as whole-query mode does; it is part of the
        span's cache key because a changed FROM clause changes this
        clause's literal determination.
        """
        masked = preprocess_transcription(transcription)
        results, stats = self._searcher(kind).search_span(masked.masked, k=k)
        if not results:
            return transcription, [], stats
        structure = results[0].structure
        if tables_context:
            # The display's FROM tables act as narrowing context:
            # pass-2 narrowing inside determine() only sees this clause.
            literals = self._determine_with_tables(
                list(masked.source), structure, list(tables_context)
            )
        else:
            literals = self._determiner.determine(
                list(masked.source), structure
            )
        return literals.sql(), results, stats

    def _determine_with_tables(self, tokens, structure, tables):
        from repro.grammar.categorizer import assign_categories

        categories = assign_categories(structure)
        value_types = self._determiner._value_types(structure, categories)
        filled = self._determiner._walk(
            tokens, structure, categories, value_types, tables=tables
        )
        from repro.literal.determiner import LiteralResult

        return LiteralResult(structure=structure, literals=filled)

    def dictate_query(
        self, sql_text: str, seed: int
    ) -> tuple[str, dict[Clause, str]]:
        """Dictate a full query clause by clause; returns the assembled
        query plus each clause's corrected text."""
        tokens = tokenize_sql(sql_text)
        clauses = split_clauses(tokens)
        outputs: dict[Clause, str] = {}
        tables: list[str] = []
        assembled: list[str] = []
        for offset, (clause, clause_tokens) in enumerate(clauses.items()):
            kind = _CLAUSE_TO_KIND[clause]
            corrected = self.dictate_clause(
                " ".join(clause_tokens),
                kind,
                seed=seed + offset,
                tables_context=tables or None,
            )
            outputs[clause] = corrected
            if clause is Clause.FROM:
                tables = [
                    t for t in tokenize_sql(corrected) if self.catalog.has_table(t)
                ]
            assembled.append(corrected)
        return " ".join(assembled), outputs
