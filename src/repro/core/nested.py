"""One-level nested query handling (paper Appendix F.8).

The paper employs "a heuristic to detect if there exists a nested query
inside a query": the nested substring is replaced with a placeholder,
and structure + literal determination run independently on the outer
and inner queries.  This module implements exactly that heuristic over
transcription tokens: an inner region opening at the ``( select`` (or
bare second ``select``) and closing at its matching parenthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.result import SpeakQLOutput
from repro.structure.masking import handle_splchars


class TranscriptionCorrector(Protocol):
    """Anything that corrects a raw transcription — the :class:`SpeakQL`
    facade or a :class:`~repro.core.service.SpeakQLService`."""

    def correct_transcription(self, transcription: str) -> SpeakQLOutput: ...


@dataclass(frozen=True)
class NestedSplit:
    """Outer/inner partition of a nested transcription."""

    outer: list[str]  # inner region replaced by the sentinel below
    inner: list[str]

    SENTINEL = "__NESTED__"


def split_nested(tokens: list[str]) -> NestedSplit | None:
    """Detect and split a one-level nested query; None when not nested.

    The inner region starts at the second SELECT and runs to its matching
    close parenthesis (or end of string when ASR lost the parenthesis).
    """
    lowered = [t.lower() for t in tokens]
    select_positions = [i for i, t in enumerate(lowered) if t == "select"]
    if len(select_positions) < 2:
        return None
    start = select_positions[1]
    depth = 0
    end = len(tokens)
    for i in range(start, len(tokens)):
        if tokens[i] == "(":
            depth += 1
        elif tokens[i] == ")":
            if depth == 0:
                end = i
                break
            depth -= 1
    inner = tokens[start:end]
    outer = tokens[:start] + [NestedSplit.SENTINEL] + tokens[end:]
    return NestedSplit(outer=outer, inner=inner)


def correct_nested_transcription(
    pipeline: TranscriptionCorrector, transcription: str
) -> str:
    """Correct a (possibly nested) transcription with ``pipeline``.

    Falls back to plain correction when no nesting is detected.  The
    outer query is corrected with the inner region masked as a single
    literal placeholder; the inner query is corrected independently and
    substituted back into the outer query's IN-list slot.
    """
    tokens = handle_splchars(transcription.split())
    split = split_nested(tokens)
    if split is None:
        return pipeline.correct_transcription(transcription).sql

    inner_out = pipeline.correct_transcription(" ".join(split.inner)).sql
    outer_text = " ".join(
        "innerquery" if t == NestedSplit.SENTINEL else t for t in split.outer
    )
    outer_out = pipeline.correct_transcription(outer_text).sql
    return _substitute_inner(outer_out, inner_out)


def _substitute_inner(outer_sql: str, inner_sql: str) -> str:
    """Replace the literal inside the outer IN ( ... ) with the inner SQL."""
    tokens = outer_sql.split()
    for i, token in enumerate(tokens):
        if token.upper() != "IN":
            continue
        if i + 2 < len(tokens) and tokens[i + 1] == "(":
            # Find the matching close parenthesis of this IN list.
            depth = 0
            for j in range(i + 1, len(tokens)):
                if tokens[j] == "(":
                    depth += 1
                elif tokens[j] == ")":
                    depth -= 1
                    if depth == 0:
                        return " ".join(
                            tokens[: i + 2] + inner_sql.split() + tokens[j:]
                        )
            break
    # No IN ( ... ) slot survived structure determination: append one.
    return f"{outer_sql} IN ( {inner_sql} )"
