"""Result types of the end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.literal.determiner import LiteralResult
from repro.structure.search import SearchResult, SearchStats


@dataclass
class ComponentTimings:
    """Per-component wall-clock latency in seconds."""

    structure_seconds: float = 0.0
    literal_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.structure_seconds + self.literal_seconds


@dataclass
class SpeakQLOutput:
    """End-to-end output for one dictated query.

    ``queries`` is the ranked list of candidate SQL strings (top-1 first);
    the interface displays ``queries[0]`` and offers the rest on demand.
    """

    asr_text: str
    asr_alternatives: tuple[str, ...]
    queries: list[str]
    structure: SearchResult | None
    literal_result: LiteralResult | None
    timings: ComponentTimings = field(default_factory=ComponentTimings)
    search_stats: SearchStats | None = None

    @property
    def sql(self) -> str:
        """The top-1 corrected SQL string."""
        return self.queries[0] if self.queries else ""

    def top(self, k: int) -> list[str]:
        return self.queries[:k]
