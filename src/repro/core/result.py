"""Result types of the end-to-end pipeline."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.literal.determiner import LiteralResult
from repro.structure.search import SearchResult, SearchStats

#: Canonical stage names (see :mod:`repro.core.stages`).
TRANSCRIBE_STAGE = "transcribe"
MASK_STAGE = "mask"
STRUCTURE_STAGE = "structure_search"
LITERAL_STAGE = "literal_determination"


class ComponentTimings:
    """Per-stage wall-clock latency in seconds.

    Timings are a mapping of stage name to seconds, accumulated by the
    pipeline's :class:`~repro.core.stages.QueryContext`.  The original
    two-field view (``structure_seconds`` / ``literal_seconds``) remains
    as properties over the canonical stage names, and the legacy
    two-argument constructor still works.
    """

    __slots__ = ("stages",)

    def __init__(
        self,
        structure_seconds: float = 0.0,
        literal_seconds: float = 0.0,
        *,
        stages: Mapping[str, float] | None = None,
    ) -> None:
        if stages is not None:
            self.stages: dict[str, float] = dict(stages)
        else:
            self.stages = {}
            if structure_seconds:
                self.stages[STRUCTURE_STAGE] = structure_seconds
            if literal_seconds:
                self.stages[LITERAL_STAGE] = literal_seconds

    def stage_seconds(self, name: str) -> float:
        """Seconds spent in stage ``name`` (0.0 when it never ran)."""
        return self.stages.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.stage_seconds(name)

    @property
    def structure_seconds(self) -> float:
        return self.stage_seconds(STRUCTURE_STAGE)

    @property
    def literal_seconds(self) -> float:
        return self.stage_seconds(LITERAL_STAGE)

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComponentTimings):
            return NotImplemented
        return self.stages == other.stages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.6f}" for k, v in self.stages.items())
        return f"ComponentTimings({inner})"


@dataclass
class SpeakQLOutput:
    """End-to-end output for one dictated query.

    ``queries`` is the ranked list of candidate SQL strings (top-1 first);
    the interface displays ``queries[0]`` and offers the rest on demand.
    """

    asr_text: str
    asr_alternatives: tuple[str, ...]
    queries: list[str]
    structure: SearchResult | None
    literal_result: LiteralResult | None
    timings: ComponentTimings = field(default_factory=ComponentTimings)
    search_stats: SearchStats | None = None

    @property
    def sql(self) -> str:
        """The top-1 corrected SQL string."""
        return self.queries[0] if self.queries else ""

    def top(self, k: int) -> list[str]:
        return self.queries[:k]
