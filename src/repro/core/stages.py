"""Composable pipeline stages over a per-query context.

The online half of the paper's Figure 2 is a short chain of stages —
transcribe → mask → structure search → literal determination — each a
cheap pass over one query.  This module expresses them as small,
immutable :class:`PipelineStage` objects sharing nothing but the
read-only compiled assets they wrap (see
:mod:`repro.core.artifacts`), plus a mutable per-query
:class:`QueryContext` that accumulates stage timings and search
statistics.  :func:`run_stages` threads a value through a stage chain,
timing each stage into the context.

The context also carries the query's observability handles: a
:class:`~repro.observability.trace.Tracer` (default: the shared
disabled :data:`~repro.observability.trace.NULL_TRACER`) and an
optional :class:`~repro.observability.metrics.MetricsRegistry`.  When
either is live, :func:`run_stages` wraps each stage in a
``stage.<name>`` span and observes its wall seconds into the
``speakql_stage_seconds`` histogram; when both are off it runs the
original untraced loop, so the disabled path costs one extra branch per
query (see ``tests/observability/test_tracer.py``).

Because stages hold only immutable state and the context is per query,
the same stage objects can serve many queries concurrently (see
:class:`repro.core.service.SpeakQLService`).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.asr.engine import AsrResult, SimulatedAsrEngine
from repro.errors import DeadlineExceededError
from repro.core.result import (
    LITERAL_STAGE,
    MASK_STAGE,
    STRUCTURE_STAGE,
    TRANSCRIBE_STAGE,
    ComponentTimings,
)
from repro.literal.determiner import LiteralDeterminer, LiteralResult
from repro.observability import names as obs_names
from repro.observability.forensics import QueryRecord, StructureCandidate
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACER, Tracer
from repro.structure.masking import (
    MaskedTranscription,
    collapse_literal_runs,
    preprocess_transcription,
)
from repro.structure.search import SearchResult, SearchStats, StructureSearchEngine

if TYPE_CHECKING:
    from repro.asr.speakers import SpeakerProfile


@dataclass
class QueryContext:
    """Mutable per-query state threaded through the stages.

    One context serves one query (or one ASR alternative); contexts are
    never shared across queries, which is what keeps the batch service's
    parallel path bit-identical to the serial one.
    """

    seed: int | None = None
    nbest: int | None = None
    voice: "SpeakerProfile | None" = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    search_stats: SearchStats | None = None
    #: Observability handles; the defaults are strict no-ops.
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry | None = None
    #: Forensic provenance record the stages fill in when recording is
    #: on (see :mod:`repro.observability.forensics`).  Stages only ever
    #: *add* observations; the pipeline's outputs are bit-identical with
    #: or without a record attached.
    query_record: QueryRecord | None = None
    #: Absolute ``time.perf_counter()`` cutoff for this query, or
    #: ``None`` for no deadline.  Enforced *cooperatively*: the query is
    #: only stopped between stages (:meth:`check_deadline`), never
    #: mid-stage, so a timed-out query leaves no half-mutated state.
    deadline: float | None = None

    def record(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` against ``stage``."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def check_deadline(self, boundary: str) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` when past due.

        ``boundary`` names the stage that was about to run; it lands on
        the exception (and in the serving runtime's timeout report).
        """
        if self.deadline is not None and time.perf_counter() >= self.deadline:
            raise DeadlineExceededError(
                f"deadline exceeded before stage {boundary!r}",
                stage=boundary,
            )

    def merge(self, other: "QueryContext") -> None:
        """Fold another context's timings and stats into this one."""
        for stage, seconds in other.stage_seconds.items():
            self.record(stage, seconds)
        if other.search_stats is not None:
            self.search_stats = other.search_stats

    def timings(self) -> ComponentTimings:
        return ComponentTimings(stages=self.stage_seconds)


@runtime_checkable
class PipelineStage(Protocol):
    """One step of the online pipeline: ``run(value, ctx) -> value``."""

    name: str

    def run(self, value: Any, ctx: QueryContext) -> Any: ...


def run_stages(stages: list[PipelineStage], value: Any, ctx: QueryContext) -> Any:
    """Thread ``value`` through ``stages``, timing each into ``ctx``.

    With the context's tracer disabled and no registry attached this is
    the original untouched loop; otherwise each stage runs inside a
    ``stage.<name>`` span and its wall seconds land in the
    ``speakql_stage_seconds{stage=<name>}`` histogram.  Either way a
    stage's seconds are recorded exactly once in ``ctx`` — fallbacks
    inside a stage (e.g. the search kernel's DAP fallback) surface as
    span attributes, never as overlapping timings.

    Deadlines are enforced here, at stage boundaries: with
    ``ctx.deadline`` set, each stage is preceded by a
    :meth:`QueryContext.check_deadline` — a query past its cutoff stops
    before the next stage starts (never mid-stage) and raises
    :class:`~repro.errors.DeadlineExceededError` naming the boundary.
    """
    tracer = ctx.tracer
    metrics = ctx.metrics
    if not tracer.enabled and metrics is None:
        if ctx.deadline is None:
            for stage in stages:
                start = time.perf_counter()
                value = stage.run(value, ctx)
                ctx.record(stage.name, time.perf_counter() - start)
            return value
        for stage in stages:
            ctx.check_deadline(stage.name)
            start = time.perf_counter()
            value = stage.run(value, ctx)
            ctx.record(stage.name, time.perf_counter() - start)
        return value
    for stage in stages:
        if ctx.deadline is not None:
            ctx.check_deadline(stage.name)
        with tracer.span(obs_names.STAGE_SPAN_PREFIX + stage.name):
            start = time.perf_counter()
            value = stage.run(value, ctx)
            elapsed = time.perf_counter() - start
        ctx.record(stage.name, elapsed)
        if metrics is not None:
            metrics.histogram(
                obs_names.STAGE_SECONDS, stage=stage.name
            ).observe(elapsed)
    return value


# -- intermediate values -----------------------------------------------------


@dataclass(frozen=True)
class MaskedQuery:
    """A preprocessed transcription plus the tokens fed to the search."""

    masked: MaskedTranscription
    search_tokens: tuple[str, ...]

    @property
    def source(self) -> tuple[str, ...]:
        return self.masked.source


@dataclass(frozen=True)
class StructureMatches:
    """Search results for one masked transcription."""

    masked: MaskedQuery
    results: tuple[SearchResult, ...]

    @property
    def best(self) -> SearchResult | None:
        return self.results[0] if self.results else None


@dataclass(frozen=True)
class CorrectedQuery:
    """Final per-alternative correction: SQL plus its evidence."""

    sql: str
    structure: SearchResult | None
    literals: LiteralResult | None


# -- stages ------------------------------------------------------------------


@dataclass(frozen=True)
class TranscribeStage:
    """Dictate SQL text through the simulated ASR engine."""

    engine: SimulatedAsrEngine
    default_nbest: int = 5
    name: str = TRANSCRIBE_STAGE

    def run(self, value: str, ctx: QueryContext) -> AsrResult:
        if ctx.seed is None:
            raise ValueError("TranscribeStage requires ctx.seed")
        channel = None
        if ctx.voice is not None:
            channel = ctx.voice.channel(self.engine.channel.profile)
        return self.engine.transcribe(
            value,
            seed=ctx.seed,
            nbest=ctx.nbest or self.default_nbest,
            channel=channel,
            tracer=ctx.tracer,
            record=ctx.query_record,
        )


@dataclass(frozen=True)
class MaskStage:
    """SplChar handling + literal masking of a raw transcription."""

    literal_focused: bool = False
    name: str = MASK_STAGE

    def run(self, value: str, ctx: QueryContext) -> MaskedQuery:
        masked = preprocess_transcription(value)
        tokens = masked.masked
        if self.literal_focused:
            tokens = collapse_literal_runs(tokens)
        result = MaskedQuery(masked=masked, search_tokens=tuple(tokens))
        if ctx.query_record is not None:
            ctx.query_record.source_tokens = tuple(masked.source)
            ctx.query_record.masked = result.search_tokens
        return result


@dataclass(frozen=True)
class StructureSearchStage:
    """Similarity search over the shared structure index.

    The wrapped engine runs the compiled (flat-array) kernel by default
    against arrays lowered once in the offline step, so concurrent
    queries share the index without copying or locking.
    """

    searcher: StructureSearchEngine
    k: int = 1
    name: str = STRUCTURE_STAGE

    def run(self, value: MaskedQuery, ctx: QueryContext) -> StructureMatches:
        results, stats = self.searcher.search(value.search_tokens, k=self.k)
        ctx.search_stats = stats
        record = ctx.query_record
        if record is not None:
            # The record wants the ranked top-k context, not just the
            # winner the stage needs.  Run a *separate* search at the
            # record's k — the stage's own k=1 call above stays exactly
            # as in the unrecorded path (same cache key, same result),
            # so recording never perturbs the output.
            topk, _ = self.searcher.search(
                value.search_tokens, k=max(record.top_k, self.k)
            )
            record.candidates = tuple(
                StructureCandidate(structure=tuple(r.structure), distance=r.distance)
                for r in topk
            )
            record.search_stats = asdict(stats)
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.annotate("kernel_requested", self.searcher.kernel)
            tracer.annotate("kernel_used", stats.kernel or self.searcher.kernel)
            if stats.dap_fallback:
                tracer.annotate("dap_fallback", True)
        if ctx.metrics is not None:
            _publish_search_stats(ctx.metrics, stats)
        return StructureMatches(masked=value, results=tuple(results))


@dataclass(frozen=True)
class LiteralStage:
    """Fill the best structure's placeholders from the phonetic index."""

    determiner: LiteralDeterminer
    name: str = LITERAL_STAGE

    def run(self, value: StructureMatches, ctx: QueryContext) -> CorrectedQuery:
        best = value.best
        if best is None:
            return CorrectedQuery(sql="", structure=None, literals=None)
        literals = self.determiner.determine(
            list(value.masked.source),
            best.structure,
            tracer=ctx.tracer,
            record=ctx.query_record,
        )
        return CorrectedQuery(sql=literals.sql(), structure=best, literals=literals)


def _publish_search_stats(metrics: MetricsRegistry, stats: SearchStats) -> None:
    """Fold one search's statistics into the registry.

    Cache hits count as served searches (plus a cache-hit tick) but do
    not re-count the original search's work counters.
    """
    metrics.counter(
        obs_names.SEARCH_TOTAL, kernel=stats.kernel or "unknown"
    ).inc()
    if stats.result_cache_hit:
        metrics.counter(obs_names.SEARCH_RESULT_CACHE_HITS).inc()
        return
    if stats.dap_fallback:
        metrics.counter(obs_names.SEARCH_DAP_FALLBACK_TOTAL).inc()
    metrics.counter(obs_names.SEARCH_NODES_VISITED).inc(stats.nodes_visited)
    metrics.counter(obs_names.SEARCH_DP_CELLS).inc(stats.dp_cells)
    metrics.counter(obs_names.SEARCH_TRIES_SEARCHED).inc(stats.tries_searched)
    metrics.counter(obs_names.SEARCH_TRIES_SKIPPED).inc(stats.tries_skipped)
    metrics.counter(
        obs_names.SEARCH_CANDIDATES_SCORED
    ).inc(stats.candidates_scored)
    if stats.levels_visited:
        metrics.counter(
            obs_names.SEARCH_LEVELS_VISITED
        ).inc(stats.levels_visited)
    if stats.rows_pruned:
        metrics.counter(obs_names.SEARCH_ROWS_PRUNED).inc(stats.rows_pruned)
    if stats.beam_bound_updates:
        metrics.counter(
            obs_names.SEARCH_BEAM_BOUND_UPDATES
        ).inc(stats.beam_bound_updates)
    if stats.inv_cache_hits:
        metrics.counter(
            obs_names.SEARCH_INV_CACHE_HITS
        ).inc(stats.inv_cache_hits)
    if stats.inv_cache_builds:
        metrics.counter(
            obs_names.SEARCH_INV_CACHE_BUILDS
        ).inc(stats.inv_cache_builds)
