"""Shared immutable pipeline artifacts (the paper's offline step).

The paper's Figure 2 splits SpeakQL into an *offline* phase — generate
~1.6M candidate structures and index them in tries, pre-compute the
phonetic index of the queried database, train the ASR language model —
and a cheap *online* phase that runs per dictated query.
:class:`SpeakQLArtifacts` is the offline half as one bundle of compiled,
effectively immutable assets:

- the grammar-derived (catalog-independent) :class:`StructureIndex`,
  pre-lowered to its flat-array compiled form (see
  :mod:`repro.structure.compiled`) so search workers share the
  immutable arrays read-only, plus the per-clause indexes used by
  clause-level dictation;
- one :class:`PhoneticIndex` per catalog, built on first use;
- the trained ASR engine / language model.

A bundle is built once and shared freely: across pipelines over
different catalogs (the structure index is catalog-independent), across
repeated sessions (``load_or_build`` caches the generated structures on
disk), and across worker threads (all accessors are read-only after a
lock-guarded first build).

The bundle is also the source of truth for the observability layer's
*size* gauges — :meth:`SpeakQLArtifacts.publish_metrics` exports the
compiled index's structure/trie/node/token counts into a
:class:`~repro.observability.metrics.MetricsRegistry`, which the batch
service calls at the end of every metered batch so exported metrics
always describe the index that actually served the traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.asr.engine import SimulatedAsrEngine, make_custom_engine
from repro.grammar.generator import DEFAULT_MAX_TOKENS, StructureGenerator
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog
from repro.structure.indexer import StructureIndex

if TYPE_CHECKING:
    from repro.core.clauses import ClauseKind

#: Default token cap for clause-grammar indexes (see ``core/clauses.py``).
DEFAULT_MAX_CLAUSE_TOKENS = 18


def structure_cache_path(cache_dir: str | Path, max_tokens: int) -> Path:
    """Canonical on-disk location of a structure index inside ``cache_dir``."""
    return Path(cache_dir) / f"structures-max{max_tokens}.txt"


@dataclass
class SpeakQLArtifacts:
    """The shareable compiled assets behind every SpeakQL pipeline."""

    structure_index: StructureIndex
    engine: SimulatedAsrEngine
    max_structure_tokens: int = DEFAULT_MAX_TOKENS
    max_clause_tokens: int = DEFAULT_MAX_CLAUSE_TOKENS
    #: Phonetic indexes keyed by catalog identity; the catalog reference
    #: is kept alongside so the id() key can never be recycled.
    _phonetic: dict[int, tuple[Catalog, PhoneticIndex]] = field(
        default_factory=dict, repr=False
    )
    _clause_indexes: dict[tuple[str, int], StructureIndex] = field(
        default_factory=dict, repr=False
    )
    _shared: object | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        max_structure_tokens: int = DEFAULT_MAX_TOKENS,
        max_clause_tokens: int = DEFAULT_MAX_CLAUSE_TOKENS,
        engine: SimulatedAsrEngine | None = None,
        training_sql: list[str] | None = None,
        structure_index: StructureIndex | None = None,
    ) -> "SpeakQLArtifacts":
        """Build the full bundle in memory (the offline step).

        ``training_sql`` trains a custom ASR engine when no ``engine`` is
        given; ``structure_index`` short-circuits index generation when a
        caller already holds one.
        """
        if engine is None:
            engine = make_custom_engine(training_sql)
        if structure_index is None:
            structure_index = StructureIndex.build(
                StructureGenerator(max_tokens=max_structure_tokens)
            )
        # Lower the index to its compiled form here, in the offline step:
        # the flat arrays are immutable, so batch workers share them
        # read-only instead of racing on a lazy first compile.
        structure_index.compiled()
        return cls(
            structure_index=structure_index,
            engine=engine,
            max_structure_tokens=max_structure_tokens,
            max_clause_tokens=max_clause_tokens,
        )

    @classmethod
    def load_or_build(
        cls,
        cache_dir: str | Path,
        *,
        max_structure_tokens: int = DEFAULT_MAX_TOKENS,
        max_clause_tokens: int = DEFAULT_MAX_CLAUSE_TOKENS,
        engine: SimulatedAsrEngine | None = None,
        training_sql: list[str] | None = None,
    ) -> "SpeakQLArtifacts":
        """Build the bundle, caching the structure index under ``cache_dir``.

        The index file is keyed by its token cap, so bundles with
        different caps coexist in one cache directory; a valid cached
        file skips regeneration entirely.
        """
        from repro.structure.persistence import load_or_build

        index = load_or_build(
            structure_cache_path(cache_dir, max_structure_tokens),
            max_tokens=max_structure_tokens,
        )
        return cls.build(
            max_structure_tokens=max_structure_tokens,
            max_clause_tokens=max_clause_tokens,
            engine=engine,
            training_sql=training_sql,
            structure_index=index,
        )

    # -- observability -------------------------------------------------------

    def fingerprint(self) -> dict:
        """Identity of the compiled assets, for replay-bundle checking.

        Two bundles with equal fingerprints index the same structures
        with the same vocabulary and ASR engine, so a recorded query
        replays bit-identically against either.  The compiled index's
        size gauges double as cheap content proxies (structure, trie,
        node, and token counts all shift on any grammar change).
        """
        out = dict(self.structure_index.compiled().metrics())
        out["max_structure_tokens"] = self.max_structure_tokens
        out["engine"] = self.engine.name
        out["engine_vocabulary"] = len(self.engine.lm.vocabulary())
        return out

    def publish_metrics(self, registry) -> None:
        """Export the compiled index's size gauges into ``registry``.

        Gauges merge by maximum, so repeated publication (every metered
        batch) is idempotent for a fixed bundle.
        """
        for name, value in self.structure_index.compiled().metrics().items():
            registry.gauge(name).set(value)

    # -- shared asset accessors --------------------------------------------

    def phonetic_index(self, catalog: Catalog) -> PhoneticIndex:
        """The phonetic index of ``catalog``, built once and cached.

        Repeated pipelines over the same catalog share one index instead
        of re-deriving Metaphone codes for every DB literal.
        """
        key = id(catalog)
        cached = self._phonetic.get(key)
        if cached is not None:
            return cached[1]
        with self._lock:
            cached = self._phonetic.get(key)
            if cached is None:
                cached = (catalog, PhoneticIndex.from_catalog(catalog))
                self._phonetic[key] = cached
        return cached[1]

    def shared_index(self):
        """The compiled index exported to shared memory, built once.

        Returns the bundle's owned
        :class:`~repro.structure.compiled.SharedCompiledIndex` — one
        segment all shard workers (and several executors over the same
        bundle) map read-only.  The bundle owns the segment; call
        :meth:`release_shared` (or let the owning service ``close()``)
        to unlink it.
        """
        shared = self._shared
        if shared is not None and not shared.closed:
            return shared
        with self._lock:
            shared = self._shared
            if shared is None or shared.closed:
                shared = self.structure_index.compiled().to_shared()
                self._shared = shared
        return shared

    def release_shared(self) -> None:
        """Unlink the shared-memory export, if one was created."""
        with self._lock:
            shared = self._shared
            self._shared = None
        if shared is not None:
            shared.close()

    def clause_index(
        self, kind: "ClauseKind", max_tokens: int | None = None
    ) -> StructureIndex:
        """The structure index of one clause grammar, built once per kind."""
        from repro.core.clauses import clause_grammar

        cap = max_tokens if max_tokens is not None else self.max_clause_tokens
        key = (kind.value, cap)
        cached = self._clause_indexes.get(key)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._clause_indexes.get(key)
            if cached is None:
                grammar = clause_grammar(kind)
                cached = StructureIndex.from_structures(
                    grammar.enumerate_strings(cap)
                )
                self._clause_indexes[key] = cached
        return cached
