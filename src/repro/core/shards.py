"""Sharded multi-process structure search (scatter–gather coordinator).

The hot DP kernel is GIL-bound, so thread-parallel serving cannot scale
with cores.  This module shards the *compiled* structure index across a
persistent pool of worker processes instead:

- the coordinator copies the compiled arrays into one shared-memory
  segment (:meth:`CompiledStructureIndex.to_shared`) and partitions the
  per-length tries into K balanced shards
  (:func:`~repro.structure.compiled.partition_lengths`);
- each worker process attaches a zero-copy view of *its* shard's tries
  (:func:`~repro.structure.compiled.from_shared`) and runs the ordinary
  ``compiled`` kernel over them — N workers, one copy of the index;
- :class:`ShardedSearchExecutor` routes each query to the shards its
  BDB length bounds can touch, scatters it over the pool, and merges
  the per-shard top-k lists with a fixed tie-break.

**Bit-identity.**  The single-process kernel's top-k equals the k
smallest candidates under the lexicographic key ``(distance, trie
visit order, within-trie offer order)``, deduplicated by structure —
pruning only ever removes strictly-worse candidates.  Trie visit order
is ``sorted by (|length - m|, length)`` and each trie holds structures
of exactly one length, so that key collapses to ``(distance,
|len(structure) - m|, len(structure))`` across tries, with full-key
ties possible only *within* one trie — which lives in exactly one
shard, whose local top-k list already carries the within-trie order.
A stable sort of the concatenated shard lists by that key therefore
reproduces the global offer order exactly, and each global winner is
guaranteed to appear in its shard's local top-k (fewer than k global
candidates beat it, so fewer than k shard-local ones do).

**Routing.**  A scalar beam probe of the globally closest-length trie
yields an upper bound B on the k-th best distance; a shard none of
whose lengths satisfies ``|m - length| * min_weight <= B`` cannot
contribute (strict ``>`` is required to keep threshold ties exact) and
is skipped without dispatch.

**Degradation.**  Every shard has its own circuit breaker.  A leg that
fails — worker dead, response over ``shard_timeout``, worker error, or
breaker open — is re-run *in-process* on the coordinator's own compiled
index restricted to that shard's tries, so a sick shard degrades alone
while answers stay bit-identical.  Only a stopped pool or the death of
every populated shard raises :class:`~repro.errors.ShardPoolError`,
which the serving runtime's degradation ladder turns into a full
in-process rung.
"""

from __future__ import annotations

import itertools
import os
import queue as queue_module
import threading
import time

from repro.errors import ShardPoolError
from repro.observability import names as obs_names
from repro.resilience import BREAKER_STATE_VALUES, CircuitBreaker
from repro.structure.compiled import (
    CompiledStructureIndex,
    partition_lengths,
    weights_key,
)
from repro.structure.indexer import StructureIndex
from repro.structure.search import (
    KERNEL_COMPILED,
    KERNEL_SHARDED,
    SearchResult,
    SearchStats,
    StructureSearchEngine,
)

_INF = float("inf")

#: Gauge value for a dead shard worker (0-2 are the breaker states of a
#: live one, see :data:`repro.resilience.BREAKER_STATE_VALUES`).
SHARD_STATE_DEAD = 3

#: SearchStats counters summed across shard legs into the merged stats.
_STAT_COUNTERS = (
    "nodes_visited",
    "dp_cells",
    "tries_searched",
    "tries_skipped",
    "candidates_scored",
    "levels_visited",
    "rows_pruned",
    "beam_bound_updates",
    "inv_cache_hits",
    "inv_cache_builds",
)


#: Positions of the per-shard kernel counters surfaced as labelled
#: metrics (the rest merge only into the request's SearchStats).
_IDX_NODES_VISITED = _STAT_COUNTERS.index("nodes_visited")
_IDX_ROWS_PRUNED = _STAT_COUNTERS.index("rows_pruned")
_IDX_BEAM_BOUND = _STAT_COUNTERS.index("beam_bound_updates")


def _stats_counters(stats: SearchStats) -> tuple[int, ...]:
    return tuple(getattr(stats, name) for name in _STAT_COUNTERS)


def _add_counters(stats: SearchStats, counters) -> None:
    for name, value in zip(_STAT_COUNTERS, counters):
        setattr(stats, name, getattr(stats, name) + int(value))


def _merge_topk(
    shard_lists, m: int, k: int
) -> list[SearchResult]:
    """Scatter–gather merge with the single-process tie-break.

    ``shard_lists`` are per-shard ``(distance, structure)`` lists in
    each shard's local offer order; the stable sort below restores the
    global offer order (see the module docstring's bit-identity
    argument), after which the first k distinct structures are the
    single-process top-k.
    """
    candidates = []
    for entries in shard_lists:
        candidates.extend(entries)
    candidates.sort(
        key=lambda entry: (
            entry[0],
            abs(len(entry[1]) - m),
            len(entry[1]),
        )
    )
    merged: list[SearchResult] = []
    seen: set = set()
    for distance, structure in candidates:
        if structure in seen:
            continue
        seen.add(structure)
        merged.append(SearchResult(structure=structure, distance=distance))
        if len(merged) >= k:
            break
    return merged


def _shard_worker_main(
    shard_id: int,
    handle,
    lengths,
    use_bdb: bool,
    request_queue,
    response_queue,
) -> None:
    """Worker process loop: attach the shard view, serve searches.

    Protocol: one ``("ready"| "init_error", shard_id, pid, detail)``
    handshake message, then ``("ok" | "error", shard_id, request_id,
    payload)`` per request.  ``None`` on the request queue is the clean
    shutdown sentinel.  Worker exceptions are reported per request —
    the loop itself never dies of one.

    Each request optionally carries a trace context (the coordinator's
    ``trace_id``); when present the worker records its own
    ``shard.worker.search`` span and ships the finished-span dicts back
    inside the ``ok`` payload — a compact telemetry frame — so the
    coordinator can re-parent them under its ``shard.search`` span.
    The kernel counters always ride along (they feed the per-shard
    metrics even when tracing is off).
    """
    from repro.observability.trace import Tracer
    from repro.structure.compiled import from_shared

    try:
        view = from_shared(handle, lengths=lengths)
        index = StructureIndex.from_compiled(view)
        engine = StructureSearchEngine(
            index=index,
            weights=handle.weights,
            use_bdb=use_bdb,
            kernel=KERNEL_COMPILED,
        )
        response_queue.put(("ready", shard_id, os.getpid(), None))
    except BaseException as error:  # noqa: BLE001 - reported to coordinator
        response_queue.put(("init_error", shard_id, os.getpid(), repr(error)))
        return
    while True:
        item = request_queue.get()
        if item is None:
            break
        request_id, masked, k = item[:3]
        trace_ctx = item[3] if len(item) > 3 else None
        try:
            span_dicts: list[dict] = []
            if trace_ctx is not None:
                worker_tracer = Tracer(enabled=True)
                worker_tracer.set_trace_id(trace_ctx.get("trace_id"))
                with worker_tracer.span(
                    obs_names.SPAN_SHARD_WORKER, shard=shard_id
                ):
                    results, stats = engine.search(masked, k=k)
                span_dicts = worker_tracer.to_dicts()
            else:
                results, stats = engine.search(masked, k=k)
            payload = (
                [(r.distance, r.structure) for r in results],
                _stats_counters(stats),
                span_dicts,
            )
            response_queue.put(("ok", shard_id, request_id, payload))
        except BaseException as error:  # noqa: BLE001 - reported per request
            response_queue.put(("error", shard_id, request_id, repr(error)))


class _Gather:
    """Per-request scatter bookkeeping: which shards still owe a reply."""

    __slots__ = ("expected", "results", "event", "_lock")

    def __init__(self, expected) -> None:
        self.expected = set(expected)
        self.results: dict[int, tuple[str, object]] = {}
        self.event = threading.Event()
        if not self.expected:
            self.event.set()
        self._lock = threading.Lock()

    def deliver(self, shard_id: int, kind: str, payload) -> None:
        with self._lock:
            if shard_id not in self.expected or shard_id in self.results:
                return
            self.results[shard_id] = (kind, payload)
            if len(self.results) >= len(self.expected):
                self.event.set()

    def drop(self, shard_id: int) -> None:
        """Stop waiting on ``shard_id`` (dead or over deadline)."""
        with self._lock:
            if shard_id in self.results:
                return
            self.expected.discard(shard_id)
            if len(self.results) >= len(self.expected):
                self.event.set()


class ShardedSearchExecutor:
    """Scatter–gather structure search over a persistent process pool.

    Built over one :class:`CompiledStructureIndex`; :meth:`start` places
    the index in shared memory, forks one worker per shard, and waits
    for every worker's ready handshake (raising
    :class:`~repro.errors.ShardPoolError` otherwise — no silent
    single-process fallback at startup).  :meth:`search` is the
    :class:`~repro.structure.search.StructureSearchEngine`-facing entry
    point and is thread-safe; :meth:`stop` propagates a clean shutdown
    sentinel through the pool and releases the shared segment.

    ``shared`` lends an existing
    :class:`~repro.structure.compiled.SharedCompiledIndex` (e.g. the
    artifact bundle's) instead of creating one; a lent segment is not
    closed by :meth:`stop`.
    """

    def __init__(
        self,
        compiled: CompiledStructureIndex,
        *,
        shards: int = 2,
        use_bdb: bool = True,
        shared=None,
        mp_context=None,
        shard_timeout: float = 30.0,
        start_timeout: float = 120.0,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
        metrics=None,
        tracer=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.compiled = compiled
        self.shards = shards
        self.use_bdb = use_bdb
        self.shard_timeout = shard_timeout
        self.start_timeout = start_timeout
        self.partitions = partition_lengths(compiled, shards)
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_requests=breaker_cooldown,
        )
        self.metrics = metrics
        self.tracer = tracer
        self._mp_context = mp_context
        self._min_weight = compiled.weights.min_weight
        self._shared = shared
        self._owns_shared = shared is None
        self._procs: list = [None] * shards
        self._request_queues: list = [None] * shards
        self._response_queue = None
        self._reader: threading.Thread | None = None
        self._pending: dict[int, _Gather] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._dead: set[int] = set()
        self._local_engines: dict[int, StructureSearchEngine] = {}
        self._local_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._counts_lock = threading.Lock()
        self._requests = {s: 0 for s in range(shards)}
        self._failures = {s: 0 for s in range(shards)}
        self._fallbacks = {s: 0 for s in range(shards)}
        self._started = False
        self._stopped = False

    # -- identity ------------------------------------------------------------

    @property
    def weights_key(self):
        return weights_key(self.compiled.weights)

    def matches_config(self, config) -> bool:
        """Whether an engine built from ``config`` may delegate here.

        The executor bakes in one compiled index, weight setting, and
        BDB flag; a pipeline whose effective config differs (other
        kernel, DAP, other weights, BDB off) must search in-process.
        """
        return (
            getattr(config, "search_kernel", None) == KERNEL_COMPILED
            and not getattr(config, "use_dap", False)
            and bool(getattr(config, "use_bdb", True)) == self.use_bdb
            and weights_key(config.weights) == self.weights_key
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardedSearchExecutor":
        """Start the worker pool; raises :class:`ShardPoolError` unless
        every shard worker comes up ready within ``start_timeout``."""
        if self._started or self._stopped:
            raise ShardPoolError("shard pool already started")
        ctx = self._resolve_context()
        if self._shared is None:
            self._shared = self.compiled.to_shared()
            self._owns_shared = True
        try:
            self._response_queue = ctx.Queue()
            for shard_id, lengths in enumerate(self.partitions):
                request_queue = ctx.Queue()
                self._request_queues[shard_id] = request_queue
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        shard_id,
                        self._shared.handle,
                        lengths,
                        self.use_bdb,
                        request_queue,
                        self._response_queue,
                    ),
                    daemon=True,
                    name=f"speakql-shard-{shard_id}",
                )
                proc.start()
                self._procs[shard_id] = proc
            ready: set[int] = set()
            deadline = time.monotonic() + self.start_timeout
            while len(ready) < self.shards:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardPoolError(
                        f"shard pool start timed out: {len(ready)}/"
                        f"{self.shards} workers ready"
                    )
                try:
                    kind, shard_id, _pid, detail = self._response_queue.get(
                        timeout=remaining
                    )
                except queue_module.Empty:
                    continue
                if kind == "ready":
                    ready.add(shard_id)
                else:
                    raise ShardPoolError(
                        f"shard {shard_id} failed to initialize: {detail}"
                    )
        except BaseException:
            self._teardown_processes()
            if self._owns_shared and self._shared is not None:
                self._shared.close()
                self._shared = None
            raise
        self._started = True
        self._reader = threading.Thread(
            target=self._drain_responses,
            daemon=True,
            name="speakql-shard-reader",
        )
        self._reader.start()
        self._publish_pool_metrics()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Propagate a clean stop through the pool (idempotent).

        Each worker gets the shutdown sentinel and is joined; stragglers
        are terminated.  Pending gathers are released (their legs fall
        back locally), the reader thread is unblocked, and an owned
        shared segment is unlinked.
        """
        if self._stopped:
            return
        self._stopped = True
        for request_queue in self._request_queues:
            if request_queue is not None:
                try:
                    request_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        self._teardown_processes(timeout=timeout)
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for gather in pending:
            for shard_id in list(gather.expected):
                gather.drop(shard_id)
        if self._response_queue is not None:
            try:
                self._response_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        if self._reader is not None:
            self._reader.join(timeout=timeout)
            self._reader = None
        if self._response_queue is not None:
            self._response_queue.cancel_join_thread()
            self._response_queue.close()
            self._response_queue = None
        for i, request_queue in enumerate(self._request_queues):
            if request_queue is not None:
                request_queue.cancel_join_thread()
                request_queue.close()
                self._request_queues[i] = None
        if self._owns_shared and self._shared is not None:
            self._shared.close()
            self._shared = None
        self._publish_pool_metrics()

    def _teardown_processes(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for shard_id, proc in enumerate(self._procs):
            if proc is None:
                continue
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
            self._dead.add(shard_id)
            self._procs[shard_id] = None

    def _resolve_context(self):
        import multiprocessing

        context = self._mp_context
        if context is None:
            # Prefer fork where available: workers inherit the warm
            # interpreter (numpy etc.) and start in milliseconds.
            try:
                return multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platform
                return multiprocessing.get_context()
        if isinstance(context, str):
            return multiprocessing.get_context(context)
        return context

    # -- liveness ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Started, not stopped, and >= 1 populated shard worker alive."""
        if not self._started or self._stopped:
            return False
        populated = [
            shard_id
            for shard_id, lengths in enumerate(self.partitions)
            if lengths
        ]
        if not populated:
            return True
        return any(self._worker_alive(shard_id) for shard_id in populated)

    def _worker_alive(self, shard_id: int) -> bool:
        if shard_id in self._dead:
            return False
        proc = self._procs[shard_id]
        if proc is None or not proc.is_alive():
            self._dead.add(shard_id)
            return False
        return True

    # -- search --------------------------------------------------------------

    def search(
        self,
        masked,
        k: int = 1,
        stats: SearchStats | None = None,
    ) -> tuple[list[SearchResult], SearchStats]:
        """Scatter ``masked`` over the routed shards, gather, merge.

        Bit-identical to the single-process ``compiled`` kernel over the
        same index (see the module docstring).  Raises
        :class:`ShardPoolError` only when the pool is stopped or every
        populated shard's worker has died; individual sick shards are
        served by the coordinator's in-process per-shard fallback.
        """
        masked = tuple(masked)
        k = max(k, 1)
        if stats is None:
            stats = SearchStats()
        if not self._started or self._stopped:
            raise ShardPoolError("shard pool is not running")
        populated = [
            shard_id
            for shard_id, lengths in enumerate(self.partitions)
            if lengths
        ]
        if populated and not any(
            self._worker_alive(shard_id) for shard_id in populated
        ):
            self._publish_pool_metrics()
            raise ShardPoolError(
                f"all {len(populated)} shard worker(s) have died"
            )

        m = len(masked)
        routed = self._route(masked, m, k, populated)
        stats.shards_total = len(populated)
        stats.shards_searched = len(routed)
        stats.kernel = KERNEL_SHARDED

        tracer = self.tracer
        trace_on = tracer is not None and getattr(tracer, "enabled", False)
        parent = tracer.current_span() if trace_on else None

        remote: list[int] = []
        local_legs: list[tuple[int, str]] = []
        for shard_id in routed:
            if not self._worker_alive(shard_id):
                local_legs.append((shard_id, "dead"))
            elif not self.breaker.allow(str(shard_id)):
                local_legs.append((shard_id, "breaker_open"))
            else:
                remote.append(shard_id)

        gather = _Gather(remote)
        request_id = next(self._ids)
        spans: dict[int, object] = {}
        shard_lists: dict[int, list] = {}
        leg_counters: dict[int, tuple] = {}
        failed_legs: list[tuple[int, str]] = []
        trace_ctx = (
            {"trace_id": tracer.trace_id()} if trace_on else None
        )
        try:
            if remote:
                with self._pending_lock:
                    self._pending[request_id] = gather
                for shard_id in remote:
                    if trace_on:
                        spans[shard_id] = tracer.span(
                            obs_names.SPAN_SHARD_SEARCH,
                            parent=parent,
                            shard=shard_id,
                            fallback=False,
                        ).__enter__()
                    self._request_queues[shard_id].put(
                        (request_id, masked, k, trace_ctx)
                    )
                self._await_gather(gather, remote, failed_legs)
            for shard_id, (kind, payload) in sorted(gather.results.items()):
                if kind == "ok":
                    if len(payload) == 3:
                        entries, counters, worker_spans = payload
                    else:  # pragma: no cover - pre-telemetry frame
                        entries, counters = payload
                        worker_spans = []
                    shard_lists[shard_id] = entries
                    leg_counters[shard_id] = counters
                    _add_counters(stats, counters)
                    if worker_spans and trace_on:
                        leg_span = spans.get(shard_id)
                        if leg_span is not None:
                            tracer.adopt(worker_spans, parent=leg_span)
                    self.breaker.record_success(str(shard_id))
                    self._close_span(spans, shard_id, "ok")
                else:
                    failed_legs.append((shard_id, str(payload)))
        finally:
            with self._pending_lock:
                self._pending.pop(request_id, None)

        for shard_id, reason in failed_legs:
            self.breaker.record_failure(str(shard_id))
            self._close_span(spans, shard_id, reason)
        for shard_id in list(spans):  # pragma: no cover - defensive
            self._close_span(spans, shard_id, "unresolved")

        fallback_legs = local_legs + [
            (shard_id, reason) for shard_id, reason in failed_legs
        ]
        stats.shards_failed = len(fallback_legs)
        for shard_id, reason in sorted(fallback_legs):
            engine = self._local_engine(shard_id)
            span = (
                tracer.span(
                    obs_names.SPAN_SHARD_SEARCH,
                    parent=parent,
                    shard=shard_id,
                    fallback=True,
                    outcome=reason,
                )
                if trace_on
                else None
            )
            if span is not None:
                span.__enter__()
            try:
                results, leg_stats = engine.search(masked, k=k)
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
            shard_lists[shard_id] = [
                (r.distance, r.structure) for r in results
            ]
            counters = _stats_counters(leg_stats)
            leg_counters[shard_id] = counters
            _add_counters(stats, counters)

        self._account(routed, failed_legs, fallback_legs, leg_counters)
        ordered = [shard_lists[s] for s in sorted(shard_lists)]
        return _merge_topk(ordered, m, k), stats

    def _route(
        self, masked, m: int, k: int, populated: list[int]
    ) -> list[int]:
        """Shards whose length bounds can touch the final top-k."""
        if not self.use_bdb or not populated:
            return list(populated)
        bound = self._route_bound(masked, m, k)
        if bound == _INF:
            return list(populated)
        routed = []
        for shard_id in populated:
            lower = (
                min(abs(m - length) for length in self.partitions[shard_id])
                * self._min_weight
            )
            # Strict >: a tie with the bound can still enter the top-k
            # (the k-th best may sit exactly at the bound).
            if lower > bound:
                continue
            routed.append(shard_id)
        return routed

    def _route_bound(self, masked, m: int, k: int) -> float:
        """Beam-probe upper bound on the k-th best distance (or inf)."""
        compiled = self.compiled
        lengths = compiled.lengths
        if not lengths:
            return _INF
        closest = min(lengths, key=lambda j: (abs(j - m), j))
        token_ids = compiled.token_ids
        weights_of = compiled.weights.of
        masked_ids = [token_ids.get(t, -1) for t in masked]
        mask_weights = [weights_of(t) for t in masked]
        first_col = [0.0] * (m + 1)
        acc = 0.0
        for i in range(m):
            acc += mask_weights[i]
            first_col[i + 1] = acc
        return StructureSearchEngine._beam_bound(
            compiled.tries[closest], masked_ids, mask_weights, first_col, k
        )

    def _await_gather(
        self,
        gather: _Gather,
        remote: list[int],
        failed_legs: list[tuple[int, str]],
    ) -> None:
        """Wait for every remote leg, dropping dead/late shards early."""
        deadline = time.monotonic() + self.shard_timeout
        while not gather.event.wait(timeout=0.02):
            for shard_id in remote:
                if shard_id in gather.results or shard_id not in (
                    gather.expected
                ):
                    continue
                if not self._worker_alive(shard_id):
                    gather.drop(shard_id)
                    failed_legs.append((shard_id, "worker died"))
            if time.monotonic() >= deadline:
                for shard_id in remote:
                    if (
                        shard_id not in gather.results
                        and shard_id in gather.expected
                    ):
                        gather.drop(shard_id)
                        failed_legs.append(
                            (shard_id, "shard timeout")
                        )
                break
        gather.event.wait(timeout=0.001)

    def _drain_responses(self) -> None:
        """Reader thread: route worker replies to their gathers."""
        while True:
            try:
                message = self._response_queue.get()
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if message is None:
                return
            kind, shard_id, request_id, payload = message
            with self._pending_lock:
                gather = self._pending.get(request_id)
            if gather is not None:
                gather.deliver(shard_id, kind, payload)

    def _local_engine(self, shard_id: int) -> StructureSearchEngine:
        """In-process engine over this shard's tries (degraded mode).

        The restricted index is a zero-copy :meth:`subset` view sharing
        the coordinator's own compiled arrays and cached level plans,
        so degraded answers are produced by the very same kernel and
        data the worker would have used.
        """
        with self._local_lock:
            engine = self._local_engines.get(shard_id)
            if engine is None:
                view = self.compiled.subset(self.partitions[shard_id])
                engine = StructureSearchEngine(
                    index=StructureIndex.from_compiled(view),
                    weights=self.compiled.weights,
                    use_bdb=self.use_bdb,
                    kernel=KERNEL_COMPILED,
                )
                self._local_engines[shard_id] = engine
            return engine

    def _close_span(self, spans: dict, shard_id: int, outcome: str) -> None:
        span = spans.pop(shard_id, None)
        if span is not None:
            span.set("outcome", outcome)
            span.__exit__(None, None, None)

    # -- health & metrics ----------------------------------------------------

    def shard_state(self, shard_id: int) -> str:
        """``empty`` | ``dead`` | breaker state (``closed``/...)."""
        if not self.partitions[shard_id]:
            return "empty"
        if not self._worker_alive(shard_id):
            return "dead"
        return self.breaker.state(str(shard_id))

    def health(self) -> dict:
        """A JSON-ready snapshot for ``/healthz``/``/readyz``."""
        with self._counts_lock:
            requests = dict(self._requests)
            failures = dict(self._failures)
            fallbacks = dict(self._fallbacks)
        states = {
            str(shard_id): self.shard_state(shard_id)
            for shard_id in range(self.shards)
        }
        alive_workers = sum(
            1
            for shard_id, lengths in enumerate(self.partitions)
            if lengths and self._worker_alive(shard_id)
        )
        return {
            "shards": self.shards,
            "alive": self.alive,
            "alive_workers": alive_workers,
            "states": states,
            "partitions": {
                str(shard_id): list(lengths)
                for shard_id, lengths in enumerate(self.partitions)
            },
            "requests": {str(s): n for s, n in requests.items()},
            "failures": {str(s): n for s, n in failures.items()},
            "fallbacks": {str(s): n for s, n in fallbacks.items()},
        }

    def _account(
        self, routed, failed_legs, fallback_legs, leg_counters=None
    ) -> None:
        with self._counts_lock:
            for shard_id in routed:
                self._requests[shard_id] += 1
            for shard_id, _ in failed_legs:
                self._failures[shard_id] += 1
            for shard_id, _ in fallback_legs:
                self._fallbacks[shard_id] += 1
        if self.metrics is None:
            return
        with self._metrics_lock:
            for shard_id in routed:
                self.metrics.counter(
                    obs_names.SHARD_REQUESTS_TOTAL, shard=str(shard_id)
                ).inc()
            for shard_id, counters in sorted((leg_counters or {}).items()):
                # Kernel work done inside the worker process (or the
                # in-process fallback leg), surfaced per shard — without
                # the telemetry frame these died with the child.
                label = str(shard_id)
                self.metrics.counter(
                    obs_names.SHARD_NODES_VISITED, shard=label
                ).inc(counters[_IDX_NODES_VISITED])
                self.metrics.counter(
                    obs_names.SHARD_ROWS_PRUNED, shard=label
                ).inc(counters[_IDX_ROWS_PRUNED])
                self.metrics.counter(
                    obs_names.SHARD_BEAM_BOUND_UPDATES, shard=label
                ).inc(counters[_IDX_BEAM_BOUND])
            for shard_id, _ in failed_legs:
                self.metrics.counter(
                    obs_names.SHARD_FAILURES_TOTAL, shard=str(shard_id)
                ).inc()
            for shard_id, _ in fallback_legs:
                self.metrics.counter(
                    obs_names.SHARD_FALLBACK_TOTAL, shard=str(shard_id)
                ).inc()
            for shard_id in routed:
                self.metrics.gauge(
                    obs_names.SHARD_STATE, shard=str(shard_id)
                ).set(self._state_value(shard_id))
        self._publish_pool_metrics()

    def _state_value(self, shard_id: int) -> int:
        state = self.shard_state(shard_id)
        if state == "dead":
            return SHARD_STATE_DEAD
        return BREAKER_STATE_VALUES.get(state, 0)

    def _publish_pool_metrics(self) -> None:
        if self.metrics is None:
            return
        alive_workers = sum(
            1
            for shard_id, lengths in enumerate(self.partitions)
            if lengths and self._worker_alive(shard_id)
        )
        with self._metrics_lock:
            self.metrics.gauge(obs_names.SHARD_POOL_WORKERS).set(
                alive_workers
            )

    def __enter__(self) -> "ShardedSearchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = [
    "SHARD_STATE_DEAD",
    "ShardPoolError",
    "ShardedSearchExecutor",
]
