"""The SpeakQL end-to-end pipeline (paper Figure 2).

``SpeakQL`` wires the four components together: a (simulated) ASR engine,
structure determination over a grammar-generated index, literal
determination over a phonetic index of the queried database, and an
interactive display (in :mod:`repro.interface`).

Typical use::

    catalog = build_employees_catalog()
    speakql = SpeakQL(catalog)
    output = speakql.query_from_speech("SELECT Salary FROM Employees", seed=7)
    output.sql              # corrected SQL string
    output.queries[:5]      # top-5 candidates
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.asr.engine import AsrResult, SimulatedAsrEngine, make_custom_engine
from repro.asr.speakers import SpeakerProfile
from repro.core.result import ComponentTimings, SpeakQLOutput
from repro.grammar.generator import DEFAULT_MAX_TOKENS, StructureGenerator
from repro.literal.determiner import LiteralDeterminer
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.indexer import StructureIndex
from repro.structure.masking import preprocess_transcription
from repro.structure.search import StructureSearchEngine


@dataclass(frozen=True)
class SpeakQLConfig:
    """Configuration knobs of the pipeline."""

    max_structure_tokens: int = DEFAULT_MAX_TOKENS
    top_k: int = 5
    weights: TokenWeights = DEFAULT_WEIGHTS
    use_bdb: bool = True
    use_dap: bool = False
    use_inv: bool = False
    literal_window_size: int = 4
    #: Optional path caching the generated structures on disk (the
    #: paper's offline index-build step); rebuilt when the cap changes.
    index_cache_path: str | None = None
    #: Future-work mode (paper Section 8): collapse masked literal runs
    #: before the structure search, de-emphasizing structure relative to
    #: literals so ASR token-splitting cannot inflate the distance.
    literal_focused: bool = False


@dataclass
class SpeakQL:
    """The end-to-end speech-driven querying system.

    Parameters
    ----------
    catalog:
        The database being queried (drives the phonetic index and value
        typing).
    engine:
        ASR engine; defaults to an untrained custom engine.  Train it on
        spoken SQL (``engine.train_on_sql``) for the paper's accuracy.
    structure_index:
        Pre-built structure index; built from the subset grammar when
        omitted (the offline step of Section 3.2/3.3).
    """

    catalog: Catalog
    engine: SimulatedAsrEngine | None = None
    structure_index: StructureIndex | None = None
    config: SpeakQLConfig = field(default_factory=SpeakQLConfig)
    _searcher: StructureSearchEngine = field(init=False, repr=False)
    _determiner: LiteralDeterminer = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = make_custom_engine()
        if self.structure_index is None:
            if self.config.index_cache_path is not None:
                from repro.structure.persistence import load_or_build

                self.structure_index = load_or_build(
                    self.config.index_cache_path,
                    max_tokens=self.config.max_structure_tokens,
                )
            else:
                generator = StructureGenerator(
                    max_tokens=self.config.max_structure_tokens
                )
                self.structure_index = StructureIndex.build(generator)
        self._searcher = StructureSearchEngine(
            index=self.structure_index,
            weights=self.config.weights,
            use_bdb=self.config.use_bdb,
            use_dap=self.config.use_dap,
            use_inv=self.config.use_inv,
        )
        phonetic_index = PhoneticIndex.from_catalog(self.catalog)
        self._determiner = LiteralDeterminer(
            catalog=self.catalog,
            index=phonetic_index,
            window_size=self.config.literal_window_size,
        )

    # -- public API ---------------------------------------------------------

    def query_from_speech(
        self,
        sql_text: str,
        seed: int,
        nbest: int | None = None,
        voice: "SpeakerProfile | None" = None,
    ) -> SpeakQLOutput:
        """Dictate ``sql_text`` through the simulated ASR and correct it.

        ``voice`` optionally selects a synthesized speaker profile (one
        of the eight Polly voices), which scales the acoustic channel.
        """
        assert self.engine is not None
        nbest = nbest or self.config.top_k
        channel = voice.channel(self.engine.channel.profile) if voice else None
        asr = self.engine.transcribe(
            sql_text, seed=seed, nbest=nbest, channel=channel
        )
        return self.process_asr_result(asr)

    def process_asr_result(self, asr: AsrResult) -> SpeakQLOutput:
        """Run structure + literal determination on an ASR result.

        Each ASR alternative is corrected independently; the output's
        query list is the deduplicated sequence of corrected candidates
        (the "top 5 outputs" of Table 2).
        """
        queries: list[str] = []
        top_structure = None
        top_literals = None
        top_stats = None
        timings = ComponentTimings()
        for rank, text in enumerate(asr.alternatives):
            corrected, structure, literals, stats, step = self._correct_one(text)
            if rank == 0:
                top_structure = structure
                top_literals = literals
                top_stats = stats
                timings = step
            if corrected and corrected not in queries:
                queries.append(corrected)
        if len(queries) < self.config.top_k:
            # Diversify with runner-up *structures* for the top ASR text
            # (the n-best list often differs only in literals, so its
            # corrections collapse to few distinct queries).
            for candidate in self._structure_alternatives(
                asr.text, skip=top_structure
            ):
                if candidate and candidate not in queries:
                    queries.append(candidate)
                if len(queries) >= self.config.top_k:
                    break
        return SpeakQLOutput(
            asr_text=asr.text,
            asr_alternatives=asr.alternatives,
            queries=queries,
            structure=top_structure,
            literal_result=top_literals,
            timings=timings,
            search_stats=top_stats,
        )

    def correct_transcription(self, transcription: str) -> SpeakQLOutput:
        """Correct a raw transcription text (no ASR step)."""
        corrected, structure, literals, stats, timings = self._correct_one(
            transcription
        )
        return SpeakQLOutput(
            asr_text=transcription,
            asr_alternatives=(transcription,),
            queries=[corrected] if corrected else [],
            structure=structure,
            literal_result=literals,
            timings=timings,
            search_stats=stats,
        )

    # -- internals ------------------------------------------------------------

    def _structure_alternatives(self, transcription: str, skip) -> list[str]:
        """Corrected queries for the runner-up structures of one text."""
        masked = preprocess_transcription(transcription)
        results, _ = self._searcher.search(
            self._search_tokens(masked), k=self.config.top_k
        )
        out: list[str] = []
        for result in results:
            if skip is not None and result.structure == skip.structure:
                continue
            literals = self._determiner.determine(
                list(masked.source), result.structure
            )
            out.append(literals.sql())
        return out

    def _search_tokens(self, masked) -> tuple[str, ...]:
        if self.config.literal_focused:
            from repro.structure.masking import collapse_literal_runs

            return collapse_literal_runs(masked.masked)
        return masked.masked

    def _correct_one(self, transcription: str):
        masked = preprocess_transcription(transcription)
        start = time.perf_counter()
        results, stats = self._searcher.search(self._search_tokens(masked), k=1)
        structure_seconds = time.perf_counter() - start
        if not results:
            return "", None, None, stats, ComponentTimings(structure_seconds, 0.0)
        best = results[0]
        start = time.perf_counter()
        literals = self._determiner.determine(list(masked.source), best.structure)
        literal_seconds = time.perf_counter() - start
        timings = ComponentTimings(structure_seconds, literal_seconds)
        return literals.sql(), best, literals, stats, timings
