"""The SpeakQL end-to-end pipeline (paper Figure 2).

``SpeakQL`` is a thin facade over the layered core: immutable compiled
assets live in a shared :class:`~repro.core.artifacts.SpeakQLArtifacts`
bundle (the paper's offline step), each query runs through the
composable stages of :mod:`repro.core.stages` (the online step), and
:class:`~repro.core.service.SpeakQLService` fans batches of queries over
worker threads sharing one bundle.

Typical use::

    catalog = build_employees_catalog()
    speakql = SpeakQL(catalog)
    output = speakql.query_from_speech("SELECT Salary FROM Employees", seed=7)
    output.sql              # corrected SQL string
    output.queries[:5]      # top-5 candidates

To amortize the offline step across pipelines (several catalogs, worker
threads, repeated sessions), build the artifacts once and pass them in::

    artifacts = SpeakQLArtifacts.build()
    employees_speakql = SpeakQL(employees, artifacts=artifacts)
    yelp_speakql = SpeakQL(yelp, artifacts=artifacts)   # index shared
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import asdict, dataclass, field, fields

from repro.asr.engine import AsrResult, SimulatedAsrEngine
from repro.asr.speakers import SpeakerProfile
from repro.core.artifacts import SpeakQLArtifacts
from repro.core.result import LITERAL_STAGE, SpeakQLOutput
from repro.core.stages import (
    CorrectedQuery,
    LiteralStage,
    MaskStage,
    QueryContext,
    StructureSearchStage,
    TranscribeStage,
    run_stages,
)
from repro.grammar.generator import DEFAULT_MAX_TOKENS
from repro.literal.determiner import LiteralDeterminer
from repro.observability import names as obs_names
from repro.observability.forensics import QueryRecord
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NULL_TRACER, Tracer
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.indexer import StructureIndex
from repro.structure.search import StructureSearchEngine


#: Schema version of :meth:`SpeakQLConfig.to_dict`; bump on
#: incompatible change.  Replay bundles and the serving degradation
#: ladder both speak this format.
CONFIG_VERSION = 1


@dataclass(frozen=True)
class SpeakQLConfig:
    """Configuration knobs of the pipeline."""

    max_structure_tokens: int = DEFAULT_MAX_TOKENS
    top_k: int = 5
    weights: TokenWeights = DEFAULT_WEIGHTS
    use_bdb: bool = True
    use_dap: bool = False
    use_inv: bool = False
    #: Search kernel: ``"compiled"`` (level-synchronous numpy, default),
    #: ``"flat"`` (scalar flat-array), or ``"reference"`` (node-object
    #: spec kernel).  All three return bit-identical results.
    search_kernel: str = "compiled"
    literal_window_size: int = 4
    #: Optional path caching the generated structures on disk (the
    #: paper's offline index-build step); rebuilt when the cap changes.
    index_cache_path: str | None = None
    #: Future-work mode (paper Section 8): collapse masked literal runs
    #: before the structure search, de-emphasizing structure relative to
    #: literals so ASR token-splitting cannot inflate the distance.
    literal_focused: bool = False
    #: Whether the pipeline may delegate compiled-kernel searches to an
    #: attached sharded executor (:mod:`repro.core.shards`).  Results
    #: are bit-identical either way; the serving ladder's ``in_process``
    #: rung flips this off to route around a sick worker pool.  Inert
    #: unless a ``search_executor`` is passed to :class:`SpeakQL`.
    use_sharded: bool = True

    # -- versioned serialization ------------------------------------------

    def to_dict(self) -> dict:
        """Versioned, JSON-ready form of every config knob.

        The one config wire format: replay bundles store it
        (:class:`~repro.observability.forensics.ReplayBundle`), the
        serving degradation ladder derives cheaper configs through it,
        and :meth:`from_dict` round-trips it exactly.
        """
        data = asdict(self)  # recursive: weights becomes a plain dict
        data["version"] = CONFIG_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpeakQLConfig":
        """Reconstruct a config from :meth:`to_dict` output.

        Rejects unsupported versions and unknown keys loudly — a config
        that silently dropped a knob would replay a bundle against the
        wrong pipeline.
        """
        version = data.get("version")
        if version != CONFIG_VERSION:
            raise ValueError(
                f"unsupported SpeakQLConfig version {version!r} "
                f"(this build reads version {CONFIG_VERSION})"
            )
        payload = {k: v for k, v in data.items() if k != "version"}
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SpeakQLConfig keys: {unknown}")
        weights = payload.get("weights")
        if isinstance(weights, Mapping):
            payload["weights"] = TokenWeights(**weights)
        return cls(**payload)

    def with_overrides(self, overrides: Mapping | None) -> "SpeakQLConfig":
        """A copy with ``overrides`` applied over this config's knobs.

        Overrides flow through the versioned dict form, so any override
        set a request (or ladder rung) can express is exactly the set a
        serialized config can express.
        """
        if not overrides:
            return self
        data = self.to_dict()
        for key, value in dict(overrides).items():
            if key == "version" or key not in data:
                raise ValueError(f"unknown SpeakQLConfig override {key!r}")
            data[key] = value
        return SpeakQLConfig.from_dict(data)


@dataclass
class SpeakQL:
    """The end-to-end speech-driven querying system.

    Parameters
    ----------
    catalog:
        The database being queried (drives the phonetic index and value
        typing).
    engine:
        ASR engine; defaults to the artifacts' engine (an untrained
        custom engine when no artifacts are given).  Train it on spoken
        SQL (``engine.train_on_sql``) for the paper's accuracy.
    structure_index:
        Pre-built structure index; built from the subset grammar when
        omitted (the offline step of Section 3.2/3.3).
    phonetic_index:
        Pre-built phonetic index of ``catalog``; derived from the
        catalog (via the artifacts bundle) when omitted.
    artifacts:
        Shared compiled-asset bundle.  Pass one bundle to many pipelines
        to build the structure index once and share per-catalog phonetic
        indexes.
    tracer / metrics:
        Default observability handles for every query this pipeline
        serves (see :mod:`repro.observability`).  The defaults are
        strict no-ops; per-call ``tracer=``/``metrics=`` arguments
        override them.
    """

    catalog: Catalog
    engine: SimulatedAsrEngine | None = None
    structure_index: StructureIndex | None = None
    config: SpeakQLConfig = field(default_factory=SpeakQLConfig)
    phonetic_index: PhoneticIndex | None = None
    artifacts: SpeakQLArtifacts | None = None
    #: Optional started :class:`~repro.core.shards.ShardedSearchExecutor`.
    #: Attached to the structure searcher when the config allows
    #: (``use_sharded`` and a compatible kernel/flag set); the executor's
    #: lifecycle belongs to whoever built it (usually
    #: :class:`~repro.core.service.SpeakQLService`), never the pipeline.
    search_executor: object | None = None
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry | None = None
    _searcher: StructureSearchEngine = field(init=False, repr=False)
    _determiner: LiteralDeterminer = field(init=False, repr=False)
    _mask_stage: MaskStage = field(init=False, repr=False)
    _search_stage: StructureSearchStage = field(init=False, repr=False)
    _literal_stage: LiteralStage = field(init=False, repr=False)
    _transcribe_stage: TranscribeStage = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.artifacts is None:
            self.artifacts = self._build_artifacts()
        if self.engine is None:
            self.engine = self.artifacts.engine
        if self.structure_index is None:
            self.structure_index = self.artifacts.structure_index
        if self.phonetic_index is None:
            self.phonetic_index = self.artifacts.phonetic_index(self.catalog)
        self._searcher = StructureSearchEngine(
            index=self.structure_index,
            weights=self.config.weights,
            use_bdb=self.config.use_bdb,
            use_dap=self.config.use_dap,
            use_inv=self.config.use_inv,
            kernel=self.config.search_kernel,
        )
        executor = self.search_executor
        if (
            executor is not None
            and self.config.use_sharded
            and executor.matches_config(self.config)
        ):
            self._searcher.executor = executor
        self._determiner = LiteralDeterminer(
            catalog=self.catalog,
            index=self.phonetic_index,
            window_size=self.config.literal_window_size,
        )
        self._transcribe_stage = TranscribeStage(
            engine=self.engine, default_nbest=self.config.top_k
        )
        self._mask_stage = MaskStage(literal_focused=self.config.literal_focused)
        self._search_stage = StructureSearchStage(searcher=self._searcher, k=1)
        self._literal_stage = LiteralStage(determiner=self._determiner)

    def _build_artifacts(self) -> SpeakQLArtifacts:
        """Resolve the compiled assets this facade was configured with."""
        index = self.structure_index
        if index is None and self.config.index_cache_path is not None:
            from repro.structure.persistence import load_or_build

            index = load_or_build(
                self.config.index_cache_path,
                max_tokens=self.config.max_structure_tokens,
            )
        return SpeakQLArtifacts.build(
            max_structure_tokens=self.config.max_structure_tokens,
            engine=self.engine,
            structure_index=index,
        )

    # -- public API ---------------------------------------------------------

    def query_from_speech(
        self,
        sql_text: str,
        seed: int,
        nbest: int | None = None,
        voice: "SpeakerProfile | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        record: QueryRecord | None = None,
        deadline: float | None = None,
    ) -> SpeakQLOutput:
        """Dictate ``sql_text`` through the simulated ASR and correct it.

        ``voice`` optionally selects a synthesized speaker profile (one
        of the eight Polly voices), which scales the acoustic channel.
        ``tracer``/``metrics`` override the pipeline's observability
        handles for this query; ``record`` (from
        :meth:`~repro.observability.forensics.Recorder.start`) captures
        full decision provenance without altering the output.
        ``deadline`` is an **absolute** ``time.perf_counter()`` instant:
        past it, the query stops at the next stage boundary with
        :class:`~repro.errors.DeadlineExceededError` (see
        :mod:`repro.serving` for budget-relative deadlines).
        """
        tracer = tracer if tracer is not None else self.tracer
        metrics = metrics if metrics is not None else self.metrics
        if metrics is not None:
            metrics.counter(obs_names.QUERIES_TOTAL, mode="speech").inc()
        ctx = QueryContext(
            seed=seed, nbest=nbest or self.config.top_k, voice=voice,
            tracer=tracer, metrics=metrics, query_record=record,
            deadline=deadline,
        )
        asr = run_stages([self._transcribe_stage], sql_text, ctx)
        return self.process_asr_result(asr, ctx=ctx)

    def process_asr_result(
        self, asr: AsrResult, ctx: QueryContext | None = None
    ) -> SpeakQLOutput:
        """Run structure + literal determination on an ASR result.

        Each ASR alternative is corrected independently; the output's
        query list is the deduplicated sequence of corrected candidates
        (the "top 5 outputs" of Table 2).
        """
        if ctx is None:
            ctx = QueryContext(tracer=self.tracer, metrics=self.metrics)
        queries: list[str] = []
        top: CorrectedQuery | None = None
        for rank, text in enumerate(asr.alternatives):
            # The forensic record follows the rank-0 alternative only —
            # that is the correction the output's winner comes from.
            step_ctx = QueryContext(
                tracer=ctx.tracer,
                metrics=ctx.metrics,
                query_record=ctx.query_record if rank == 0 else None,
                deadline=ctx.deadline,
            )
            corrected = self._correct_one(text, step_ctx)
            if rank == 0:
                top = corrected
                ctx.merge(step_ctx)
            if corrected.sql and corrected.sql not in queries:
                queries.append(corrected.sql)
        if len(queries) < self.config.top_k:
            # Diversify with runner-up *structures* for the top ASR text
            # (the n-best list often differs only in literals, so its
            # corrections collapse to few distinct queries).
            skip = top.structure if top is not None else None
            for candidate in self._structure_alternatives(
                asr.text, skip=skip, deadline=ctx.deadline
            ):
                if candidate and candidate not in queries:
                    queries.append(candidate)
                if len(queries) >= self.config.top_k:
                    break
        if ctx.query_record is not None:
            rec = ctx.query_record
            rec.asr_text = asr.text
            rec.asr_alternatives = tuple(asr.alternatives)
            rec.queries = tuple(queries)
            rec.sql = queries[0] if queries else ""
        return SpeakQLOutput(
            asr_text=asr.text,
            asr_alternatives=asr.alternatives,
            queries=queries,
            structure=top.structure if top else None,
            literal_result=top.literals if top else None,
            timings=ctx.timings(),
            search_stats=ctx.search_stats,
        )

    def correct_transcription(
        self,
        transcription: str,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        record: QueryRecord | None = None,
        deadline: float | None = None,
    ) -> SpeakQLOutput:
        """Correct a raw transcription text (no ASR step).

        ``tracer``/``metrics`` override the pipeline's observability
        handles for this query; ``record`` captures decision provenance
        (see :mod:`repro.observability.forensics`); ``deadline`` is an
        absolute ``time.perf_counter()`` cutoff enforced at stage
        boundaries.
        """
        tracer = tracer if tracer is not None else self.tracer
        metrics = metrics if metrics is not None else self.metrics
        if metrics is not None:
            metrics.counter(
                obs_names.QUERIES_TOTAL, mode="transcription"
            ).inc()
        ctx = QueryContext(
            tracer=tracer, metrics=metrics, query_record=record,
            deadline=deadline,
        )
        corrected = self._correct_one(transcription, ctx)
        if record is not None:
            record.asr_text = transcription
            record.asr_alternatives = (transcription,)
            record.queries = (corrected.sql,) if corrected.sql else ()
            record.sql = corrected.sql
        return SpeakQLOutput(
            asr_text=transcription,
            asr_alternatives=(transcription,),
            queries=[corrected.sql] if corrected.sql else [],
            structure=corrected.structure,
            literal_result=corrected.literals,
            timings=ctx.timings(),
            search_stats=ctx.search_stats,
        )

    # -- internals ------------------------------------------------------------

    def _correct_one(self, transcription: str, ctx: QueryContext) -> CorrectedQuery:
        """Mask → structure search → literal determination for one text."""
        return run_stages(
            [self._mask_stage, self._search_stage, self._literal_stage],
            transcription,
            ctx,
        )

    def _structure_alternatives(
        self, transcription: str, skip, deadline: float | None = None
    ) -> list[str]:
        """Corrected queries for the runner-up structures of one text."""
        ctx = QueryContext(deadline=deadline)
        masked = run_stages([self._mask_stage], transcription, ctx)
        search_stage = StructureSearchStage(
            searcher=self._searcher, k=self.config.top_k
        )
        matches = run_stages([search_stage], masked, ctx)
        out: list[str] = []
        for result in matches.results:
            ctx.check_deadline(LITERAL_STAGE)
            if skip is not None and result.structure == skip.structure:
                continue
            literals = self._determiner.determine(
                list(masked.source), result.structure
            )
            out.append(literals.sql())
        return out
