"""Parallel batch serving over one shared artifact bundle.

:class:`SpeakQLService` is the online serving layer: it owns a
:class:`~repro.core.pipeline.SpeakQL` facade backed by a read-only
:class:`~repro.core.artifacts.SpeakQLArtifacts` bundle and fans batches
of queries over worker threads.  All per-query state lives in a
:class:`~repro.core.stages.QueryContext` and all randomness flows
through explicit per-query seeds, so ``run_batch(..., workers=N)``
returns results in input order, bit-identical to the serial loop —
parallelism changes wall-clock time, never output.

Observability: ``run_batch(..., tracer=..., metrics=...)`` (or the
pipeline's default handles) wraps the batch in a ``batch`` span with one
child ``query`` span per request, and aggregates metrics **lock-free** —
each worker thread records into its own private
:class:`~repro.observability.metrics.MetricsRegistry`, and the per-
thread registries are merged into the caller's registry once, at batch
end (counter/histogram merging is commutative, so worker scheduling
cannot change the totals).  Queue wait (submit → execution start) and
execute time are reported separately per request as the
``speakql_batch_queue_wait_seconds`` / ``speakql_batch_execute_seconds``
histograms — the number that distinguishes "the pool is saturated" from
"queries are slow".  With both handles off, batches take the original
untouched fast path.

Requests are :class:`~repro.api.QueryRequest` objects — the unified
request type shared with the serving runtime, CLI, REPL, and daemon
(see :mod:`repro.api`).  The historical ``(sql, seed)`` tuple form
still normalizes, through a deprecation shim that warns once per call
site; new code constructs requests explicitly.

Typical use::

    service = SpeakQLService(catalog, artifacts=artifacts)
    outputs = service.run_batch(
        [QueryRequest(text="SELECT Salary FROM Employees", seed=7), ...],
        workers=4,
    )

    registry = MetricsRegistry()
    service.run_batch(queries, workers=4, metrics=registry)
    registry.histogram("speakql_stage_seconds",
                       stage="structure_search").quantile(0.95)
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING

from repro.api import BatchQueryError, QueryRequest
from repro.core.artifacts import SpeakQLArtifacts
from repro.core.pipeline import SpeakQL, SpeakQLConfig
from repro.core.result import SpeakQLOutput
from repro.observability import names as obs_names
from repro.observability.forensics import QueryRecord, Recorder, ReplayBundle
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog

if TYPE_CHECKING:
    from repro.asr.engine import SimulatedAsrEngine


#: Legacy name for the batch request type; :class:`~repro.api.QueryRequest`
#: is the same class under its unified-API name.
BatchRequest = QueryRequest


class SpeakQLService:
    """Batch front-end sharing one read-only artifact bundle.

    ``shards > 0`` starts a sharded multi-process search pool at
    construction (see :meth:`enable_sharding`); the service then owns
    the pool's lifecycle — call :meth:`close` (or use the service as a
    context manager) to stop the workers and unlink shared memory.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        pipeline: SpeakQL | None = None,
        artifacts: SpeakQLArtifacts | None = None,
        config: SpeakQLConfig | None = None,
        engine: "SimulatedAsrEngine | None" = None,
        phonetic_index: PhoneticIndex | None = None,
        shards: int = 0,
        mp_context: object | None = None,
    ) -> None:
        if pipeline is None:
            if catalog is None:
                raise ValueError("SpeakQLService needs a catalog or a pipeline")
            pipeline = SpeakQL(
                catalog,
                engine=engine,
                config=config or SpeakQLConfig(),
                phonetic_index=phonetic_index,
                artifacts=artifacts,
            )
        self.pipeline = pipeline
        self.artifacts = pipeline.artifacts
        self.search_executor = None
        if shards:
            self.enable_sharding(shards, mp_context=mp_context)

    @classmethod
    def from_pipeline(cls, pipeline: SpeakQL) -> "SpeakQLService":
        """Wrap an existing pipeline (shares its artifacts)."""
        return cls(pipeline=pipeline)

    @property
    def catalog(self) -> Catalog:
        return self.pipeline.catalog

    # -- sharded search pool -------------------------------------------------

    def enable_sharding(
        self,
        shards: int,
        *,
        mp_context: object | None = None,
        shard_timeout: float = 30.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        """Start a sharded multi-process search pool and attach it.

        The compiled structure index is exported to shared memory once
        (via the artifact bundle when the weights match, so several
        services over one bundle share a single segment), ``shards``
        worker processes map it read-only, and the pipeline's structure
        searches are delegated to the pool — bit-identical to the
        in-process compiled kernel.  Raises
        :class:`~repro.errors.ShardPoolError` if any worker fails to
        come up (no silent single-process fallback), and
        :class:`ValueError` when the pipeline's configuration cannot
        delegate (non-compiled kernel or DAP).
        """
        from repro.core.shards import ShardedSearchExecutor
        from repro.structure.compiled import weights_key

        if self.search_executor is not None:
            raise ValueError("the service already has a shard pool")
        config = self.pipeline.config
        if config.search_kernel != "compiled" or config.use_dap:
            raise ValueError(
                "sharded serving requires the compiled kernel without DAP "
                f"(got search_kernel={config.search_kernel!r}, "
                f"use_dap={config.use_dap})"
            )
        compiled = self.pipeline.structure_index.compiled(config.weights)
        shared = None
        if self.artifacts is not None:
            candidate = self.artifacts.shared_index()
            if weights_key(candidate.handle.weights) == compiled.weights_key:
                shared = candidate
        executor = ShardedSearchExecutor(
            compiled,
            shards=shards,
            use_bdb=config.use_bdb,
            shared=shared,
            mp_context=mp_context,
            shard_timeout=shard_timeout,
            metrics=metrics,
            tracer=tracer,
        )
        executor.start()
        self.search_executor = executor
        self.pipeline.search_executor = executor
        if config.use_sharded and executor.matches_config(config):
            self.pipeline._searcher.executor = executor
        return executor

    def close(self) -> None:
        """Stop the shard pool (if any) and unlink shared memory.

        Idempotent; an unsharded service closes as a no-op.  The
        pipeline keeps working after ``close()`` — searches simply run
        in-process again.
        """
        executor = self.search_executor
        self.search_executor = None
        if executor is not None:
            self.pipeline.search_executor = None
            self.pipeline._searcher.executor = None
            executor.stop()
        if self.artifacts is not None:
            self.artifacts.release_shared()

    def __enter__(self) -> "SpeakQLService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- single-query passthroughs -----------------------------------------

    def correct_transcription(self, transcription: str) -> SpeakQLOutput:
        return self.pipeline.correct_transcription(transcription)

    def query_from_speech(self, sql_text: str, seed: int, **kwargs) -> SpeakQLOutput:
        return self.pipeline.query_from_speech(sql_text, seed=seed, **kwargs)

    # -- batch API ----------------------------------------------------------

    def run_batch(
        self,
        spoken_queries: Iterable[object],
        *,
        workers: int = 1,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        recorder: Recorder | None = None,
    ) -> list[SpeakQLOutput]:
        """Run a batch of queries, fanning over ``workers`` threads.

        Accepts :class:`~repro.api.QueryRequest` objects, bare
        transcription strings (corrected without an ASR step), or any
        object with ``sql``/``seed`` attributes (e.g.
        :class:`~repro.dataset.spoken.SpokenQuery`).  The historical
        ``(sql_text, seed)`` tuple form still works through a
        ``DeprecationWarning`` shim.  Results come back in input order
        and are bit-identical to the serial loop; ``workers=1`` (the
        default) is the paper-faithful serial path.  A worker exception
        is re-raised as :class:`~repro.api.BatchQueryError` naming the
        failing request's input index, chained from the original.

        ``tracer``/``metrics`` override the pipeline's observability
        handles for this batch (see the module docstring for the
        span/metric layout and the lock-free aggregation scheme).  A
        ``recorder`` captures one forensic
        :class:`~repro.observability.forensics.QueryRecord` per request,
        in input order, without changing any output (see
        :meth:`write_replay_bundle`).
        """
        tracer = tracer if tracer is not None else self.pipeline.tracer
        metrics = metrics if metrics is not None else self.pipeline.metrics
        requests = [self._normalize(query) for query in spoken_queries]
        if not tracer.enabled and metrics is None and recorder is None:

            def run(item: tuple[int, QueryRequest]) -> SpeakQLOutput:
                index, request = item
                try:
                    return self._run_one(request)
                except Exception as error:
                    raise BatchQueryError(index, request, error) from error

            items = list(enumerate(requests))
            if workers <= 1 or len(requests) <= 1:
                return [run(item) for item in items]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(run, items))
        return self._run_batch_observed(
            requests, workers, tracer, metrics, recorder
        )

    def correct_batch(
        self,
        transcriptions: Sequence[str],
        *,
        workers: int = 1,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        recorder: Recorder | None = None,
    ) -> list[SpeakQLOutput]:
        """Correct raw transcriptions (no ASR step) as a batch."""
        return self.run_batch(
            [BatchRequest(text=text) for text in transcriptions],
            workers=workers,
            tracer=tracer,
            metrics=metrics,
            recorder=recorder,
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _normalize(query: object) -> QueryRequest:
        return QueryRequest.from_legacy(query)

    def _run_one(
        self,
        request: QueryRequest,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        record: QueryRecord | None = None,
    ) -> SpeakQLOutput:
        # A request-level deadline is a relative budget; the pipeline
        # wants an absolute ``perf_counter`` cutoff.  The clock starts
        # when execution starts — admission latency is the serving
        # runtime's concern, not the batch service's.
        deadline = (
            time.perf_counter() + request.deadline
            if request.deadline is not None
            else None
        )
        if request.seed is None:
            return self.pipeline.correct_transcription(
                request.text,
                tracer=tracer,
                metrics=metrics,
                record=record,
                deadline=deadline,
            )
        return self.pipeline.query_from_speech(
            request.text,
            seed=request.seed,
            nbest=request.nbest,
            voice=request.speaker,
            tracer=tracer,
            metrics=metrics,
            record=record,
            deadline=deadline,
        )

    def _run_batch_observed(
        self,
        requests: list[QueryRequest],
        workers: int,
        tracer: Tracer,
        metrics: MetricsRegistry | None,
        recorder: Recorder | None = None,
    ) -> list[SpeakQLOutput]:
        """The traced/metered batch path.

        Per-worker registries are created lazily (one small lock guards
        only registry *creation*, never the recording hot path) and
        merged into ``metrics`` after the pool drains, so worker threads
        never contend on shared counters.
        """
        registries: list[MetricsRegistry] = []
        creation_lock = threading.Lock()
        local = threading.local()

        def worker_registry() -> MetricsRegistry | None:
            if metrics is None:
                return None
            registry = getattr(local, "registry", None)
            if registry is None:
                registry = MetricsRegistry()
                with creation_lock:
                    registries.append(registry)
                local.registry = registry
            return registry

        effective_workers = max(1, min(workers, max(len(requests), 1)))
        # Forensic records are started up front, in input order, so
        # ``recorder.records`` aligns with the outputs regardless of how
        # the pool schedules the work.
        records: list[QueryRecord | None]
        if recorder is not None:
            records = [recorder.start_request(req) for req in requests]
        else:
            records = [None] * len(requests)
        batch_start = time.perf_counter()
        try:
            with tracer.span(
                "batch", queries=len(requests), workers=effective_workers
            ) as batch_span:
                # Every request is enqueued up front (both the serial loop
                # and ``pool.map`` submit immediately), so queue wait is
                # execution start minus this instant.
                enqueued = time.perf_counter()

                def run(item: tuple[int, QueryRequest]) -> SpeakQLOutput:
                    index, request = item
                    registry = worker_registry()
                    started = time.perf_counter()
                    try:
                        with tracer.span(
                            "query", parent=batch_span, mode=request.mode
                        ):
                            output = self._run_one(
                                request, tracer, registry, records[index]
                            )
                    except Exception as error:
                        # The query span above already captured the
                        # original exception; re-raise tagged with the
                        # input index so callers know which request died.
                        raise BatchQueryError(index, request, error) from error
                    if registry is not None:
                        finished = time.perf_counter()
                        registry.histogram(
                            obs_names.BATCH_QUEUE_WAIT_SECONDS
                        ).observe(started - enqueued)
                        registry.histogram(
                            obs_names.BATCH_EXECUTE_SECONDS
                        ).observe(finished - started)
                        registry.counter(obs_names.BATCH_QUERIES_TOTAL).inc()
                    return output

                items = list(enumerate(requests))
                if effective_workers <= 1 or len(requests) <= 1:
                    outputs = [run(item) for item in items]
                else:
                    with ThreadPoolExecutor(
                        max_workers=effective_workers
                    ) as pool:
                        outputs = list(pool.map(run, items))
        finally:
            # Merge in a ``finally`` so a raising query still folds the
            # completed workers' registries into the caller's view — a
            # mid-batch failure must not silently drop the metrics of
            # every request that finished before it.
            if metrics is not None:
                for registry in registries:
                    metrics.merge(registry)
                metrics.histogram(obs_names.BATCH_SECONDS).observe(
                    time.perf_counter() - batch_start
                )
                metrics.gauge(obs_names.BATCH_WORKERS).set(effective_workers)
                if self.artifacts is not None:
                    self.artifacts.publish_metrics(metrics)
        return outputs

    # -- forensics ------------------------------------------------------------

    def write_replay_bundle(
        self,
        path: str | Path,
        recorder: Recorder,
        *,
        environment: dict | None = None,
    ) -> ReplayBundle:
        """Write ``recorder``'s records as a replay bundle at ``path``.

        The bundle carries the pipeline configuration, the artifact
        fingerprint (checked on replay — see
        :func:`~repro.observability.forensics.replay_bundle`), and an
        optional ``environment`` dict describing how to rebuild the
        pipeline (e.g. CLI schema/train/kernel arguments).
        """
        bundle = ReplayBundle(
            config=self.pipeline.config.to_dict(),
            fingerprint=self.artifacts.fingerprint()
            if self.artifacts is not None
            else {},
            records=list(recorder.records),
            environment=dict(environment or {}),
        )
        bundle.write(path)
        return bundle
