"""Parallel batch serving over one shared artifact bundle.

:class:`SpeakQLService` is the online serving layer: it owns a
:class:`~repro.core.pipeline.SpeakQL` facade backed by a read-only
:class:`~repro.core.artifacts.SpeakQLArtifacts` bundle and fans batches
of queries over worker threads.  All per-query state lives in a
:class:`~repro.core.stages.QueryContext` and all randomness flows
through explicit per-query seeds, so ``run_batch(..., workers=N)``
returns results in input order, bit-identical to the serial loop —
parallelism changes wall-clock time, never output.

Typical use::

    service = SpeakQLService(catalog, artifacts=artifacts)
    outputs = service.run_batch(
        [("SELECT Salary FROM Employees", 7), ...], workers=4
    )
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.artifacts import SpeakQLArtifacts
from repro.core.pipeline import SpeakQL, SpeakQLConfig
from repro.core.result import SpeakQLOutput
from repro.phonetics.phonetic_index import PhoneticIndex
from repro.sqlengine.catalog import Catalog

if TYPE_CHECKING:
    from repro.asr.engine import SimulatedAsrEngine
    from repro.asr.speakers import SpeakerProfile


@dataclass(frozen=True)
class BatchRequest:
    """One unit of batch work.

    ``seed`` selects the dictation path (``query_from_speech``); when it
    is ``None``, ``text`` is treated as a raw ASR transcription and only
    corrected (``correct_transcription``).
    """

    text: str
    seed: int | None = None
    nbest: int | None = None
    voice: "SpeakerProfile | None" = None


class SpeakQLService:
    """Batch front-end sharing one read-only artifact bundle."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        pipeline: SpeakQL | None = None,
        artifacts: SpeakQLArtifacts | None = None,
        config: SpeakQLConfig | None = None,
        engine: "SimulatedAsrEngine | None" = None,
        phonetic_index: PhoneticIndex | None = None,
    ) -> None:
        if pipeline is None:
            if catalog is None:
                raise ValueError("SpeakQLService needs a catalog or a pipeline")
            pipeline = SpeakQL(
                catalog,
                engine=engine,
                config=config or SpeakQLConfig(),
                phonetic_index=phonetic_index,
                artifacts=artifacts,
            )
        self.pipeline = pipeline
        self.artifacts = pipeline.artifacts

    @classmethod
    def from_pipeline(cls, pipeline: SpeakQL) -> "SpeakQLService":
        """Wrap an existing pipeline (shares its artifacts)."""
        return cls(pipeline=pipeline)

    @property
    def catalog(self) -> Catalog:
        return self.pipeline.catalog

    # -- single-query passthroughs -----------------------------------------

    def correct_transcription(self, transcription: str) -> SpeakQLOutput:
        return self.pipeline.correct_transcription(transcription)

    def query_from_speech(self, sql_text: str, seed: int, **kwargs) -> SpeakQLOutput:
        return self.pipeline.query_from_speech(sql_text, seed=seed, **kwargs)

    # -- batch API ----------------------------------------------------------

    def run_batch(
        self,
        spoken_queries: Iterable[object],
        *,
        workers: int = 1,
    ) -> list[SpeakQLOutput]:
        """Run a batch of queries, fanning over ``workers`` threads.

        Accepts :class:`BatchRequest` objects, ``(sql_text, seed)``
        pairs, bare transcription strings (corrected without an ASR
        step), or any object with ``sql``/``seed`` attributes (e.g.
        :class:`~repro.dataset.spoken.SpokenQuery`).  Results come back
        in input order and are bit-identical to the serial loop;
        ``workers=1`` (the default) is the paper-faithful serial path.
        """
        requests = [self._normalize(query) for query in spoken_queries]
        if workers <= 1 or len(requests) <= 1:
            return [self._run_one(request) for request in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self._run_one, requests))

    def correct_batch(
        self, transcriptions: Sequence[str], *, workers: int = 1
    ) -> list[SpeakQLOutput]:
        """Correct raw transcriptions (no ASR step) as a batch."""
        return self.run_batch(
            [BatchRequest(text=text) for text in transcriptions],
            workers=workers,
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _normalize(query: object) -> BatchRequest:
        if isinstance(query, BatchRequest):
            return query
        if isinstance(query, str):
            return BatchRequest(text=query)
        if isinstance(query, tuple) and len(query) == 2:
            text, seed = query
            return BatchRequest(text=text, seed=seed)
        sql = getattr(query, "sql", None)
        if isinstance(sql, str):
            return BatchRequest(text=sql, seed=getattr(query, "seed", None))
        raise TypeError(f"cannot interpret batch request: {query!r}")

    def _run_one(self, request: BatchRequest) -> SpeakQLOutput:
        if request.seed is None:
            return self.pipeline.correct_transcription(request.text)
        return self.pipeline.query_from_speech(
            request.text,
            seed=request.seed,
            nbest=request.nbest,
            voice=request.voice,
        )
