"""Token trie for ground-truth SQL structures (paper Section 3.3).

A path from root to a terminal node is one structure; every node is one
token.  Structures sharing prefixes share nodes, which both saves memory
and lets the search engine share dynamic-programming columns across all
structures with a common prefix.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass
class TrieNode:
    """One trie node: a token plus children, terminal iff a structure ends
    here (with length-partitioned tries only leaves are terminal, but the
    trie supports interior terminals for generality)."""

    token: str = ""
    children: dict[str, "TrieNode"] = field(default_factory=dict)
    terminal: bool = False
    sentence: tuple[str, ...] | None = None

    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class TokenTrie:
    """A trie over token sequences."""

    root: TrieNode = field(default_factory=TrieNode)
    _size: int = 0
    _node_count: int = 1

    def insert(self, tokens: Iterable[str]) -> None:
        """Insert one structure (token sequence)."""
        node = self.root
        tokens = tuple(tokens)
        for token in tokens:
            child = node.children.get(token)
            if child is None:
                child = TrieNode(token=token)
                node.children[token] = child
                self._node_count += 1
            node = child
        if not node.terminal:
            node.terminal = True
            node.sentence = tokens
            self._size += 1

    def __contains__(self, tokens: Iterable[str]) -> bool:
        node = self.root
        for token in tokens:
            node = node.children.get(token)
            if node is None:
                return False
        return node.terminal

    def __len__(self) -> int:
        """Number of stored structures."""
        return self._size

    @property
    def node_count(self) -> int:
        """Number of trie nodes (the ``p`` of the complexity analysis)."""
        return self._node_count

    def sentences(self) -> Iterator[tuple[str, ...]]:
        """Iterate every stored structure (DFS order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.terminal and node.sentence is not None:
                yield node.sentence
            stack.extend(node.children.values())
