"""Length-partitioned structure index (paper Section 3.3).

The paper stores one trie per structure length — 50 disjoint tries — so
the bidirectional bounds of Proposition 1 can skip whole tries.  An
inverted keyword index over the stored structures supports the INV
approximation (Appendix D.3).

Two representations coexist:

- the mutable build-time form: dict-of-dicts :class:`TokenTrie` objects,
  grown by :meth:`StructureIndex.add`;
- the immutable :class:`~repro.structure.compiled.CompiledStructureIndex`
  the search engine's fast kernel runs on, produced by
  :meth:`StructureIndex.compiled` (cached per weight setting, invalidated
  when structures are added).

An index loaded from the disk cache starts *compiled-only* and
materializes its node tries lazily — only reference-kernel searches and
direct trie walks pay that cost.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.grammar.generator import StructureGenerator
from repro.grammar.vocabulary import KEYWORD_DICT
from repro.structure.compiled import CompiledStructureIndex, weights_key
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.trie import TokenTrie

#: Keywords excluded from the inverted index (they occur in virtually
#: every structure, so their postings are useless for narrowing).
_INV_EXCLUDED = frozenset({"SELECT", "FROM", "WHERE"})


@dataclass
class StructureIndex:
    """Tries keyed by structure length, plus an inverted keyword index."""

    inverted: dict[str, list[tuple[str, ...]]] = field(default_factory=dict)
    _tries: dict[int, TokenTrie] = field(default_factory=dict)
    _size: int = 0
    #: A loaded compiled form whose node tries have not been built yet.
    _lazy: CompiledStructureIndex | None = field(default=None, repr=False)
    #: Compiled forms keyed by weights, stamped with the size they saw.
    _compiled_cache: dict = field(default_factory=dict, repr=False)
    _compiled_size: int = field(default=-1, repr=False)

    @classmethod
    def build(cls, generator: StructureGenerator | None = None) -> "StructureIndex":
        """Build the index from a structure generator (offline step)."""
        index = cls()
        generator = generator or StructureGenerator()
        index.add_all(generator.generate())
        return index

    @classmethod
    def from_structures(
        cls, structures: Iterable[tuple[str, ...]]
    ) -> "StructureIndex":
        index = cls()
        index.add_all(structures)
        return index

    @classmethod
    def from_compiled(cls, compiled: CompiledStructureIndex) -> "StructureIndex":
        """Wrap a compiled form (e.g. loaded from the disk cache).

        The dict tries are rebuilt lazily on first access; the compiled
        kernel — and every accessor below — never needs them.
        """
        index = cls()
        index._lazy = compiled
        index._size = len(compiled.sentences)
        index._compiled_cache = {compiled.weights_key: compiled}
        index._compiled_size = index._size
        for sentence in compiled.sentences:
            for keyword in set(sentence):
                if keyword in KEYWORD_DICT and keyword not in _INV_EXCLUDED:
                    index.inverted.setdefault(keyword, []).append(sentence)
        return index

    @property
    def tries(self) -> dict[int, TokenTrie]:
        """The dict-of-dicts tries, materializing a lazy-loaded index."""
        if self._lazy is not None:
            lazy, self._lazy = self._lazy, None
            for sentence in lazy.sentences:
                trie = self._tries.get(len(sentence))
                if trie is None:
                    trie = TokenTrie()
                    self._tries[len(sentence)] = trie
                trie.insert(sentence)
        return self._tries

    def add_all(self, structures: Iterable[tuple[str, ...]]) -> None:
        for tokens in structures:
            self.add(tokens)

    def add(self, tokens: tuple[str, ...]) -> None:
        """Insert one structure."""
        length = len(tokens)
        tries = self.tries
        trie = tries.get(length)
        if trie is None:
            trie = TokenTrie()
            tries[length] = trie
        before = len(trie)
        trie.insert(tokens)
        if len(trie) == before:
            return  # duplicate
        self._size += 1
        for keyword in set(tokens):
            if keyword in KEYWORD_DICT and keyword not in _INV_EXCLUDED:
                self.inverted.setdefault(keyword, []).append(tokens)

    def compiled(
        self, weights: TokenWeights = DEFAULT_WEIGHTS
    ) -> CompiledStructureIndex:
        """The compiled form of this index under ``weights``.

        Compiled once and cached; later calls (including from concurrent
        batch workers — compilation is value-deterministic, so a rare
        duplicate build is harmless) return the cached object.  Adding
        structures invalidates the cache.  Variants for further weight
        settings share all structural arrays with the first.
        """
        if self._compiled_size != self._size:
            self._compiled_cache = {}
            self._compiled_size = self._size
            if self._lazy is not None:
                self._compiled_cache[self._lazy.weights_key] = self._lazy
        key = weights_key(weights)
        compiled = self._compiled_cache.get(key)
        if compiled is None:
            if self._compiled_cache:
                base = next(iter(self._compiled_cache.values()))
                compiled = base.reweighted(weights)
            else:
                compiled = CompiledStructureIndex.compile(self, weights)
            self._compiled_cache[key] = compiled
        return compiled

    def __len__(self) -> int:
        """Total number of indexed structures."""
        return self._size

    @property
    def lengths(self) -> list[int]:
        """Stored structure lengths, ascending."""
        if self._lazy is not None:
            return self._lazy.lengths
        return sorted(self._tries)

    @property
    def max_length(self) -> int:
        lengths = self.lengths
        return max(lengths) if lengths else 0

    def node_count(self) -> int:
        """Total trie nodes across all lengths."""
        if self._lazy is not None:
            return self._lazy.node_count()
        return sum(trie.node_count for trie in self._tries.values())

    def largest_trie_nodes(self) -> int:
        """Nodes in the largest trie (the ``p`` of the complexity bound)."""
        if self._lazy is not None:
            return self._lazy.largest_trie_nodes()
        if not self._tries:
            return 0
        return max(trie.node_count for trie in self._tries.values())

    def inverted_postings(self, keywords: Iterable[str]) -> list[tuple[str, ...]] | None:
        """INV candidate retrieval: postings of the rarest present keyword.

        Returns None when no indexed keyword is present (the caller falls
        back to full search).
        """
        best: list[tuple[str, ...]] | None = None
        for keyword in keywords:
            postings = self.inverted.get(keyword.upper())
            if postings is None:
                continue
            if best is None or len(postings) < len(best):
                best = postings
        return best
