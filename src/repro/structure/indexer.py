"""Length-partitioned structure index (paper Section 3.3).

The paper stores one trie per structure length — 50 disjoint tries — so
the bidirectional bounds of Proposition 1 can skip whole tries.  An
inverted keyword index over the stored structures supports the INV
approximation (Appendix D.3).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.grammar.generator import StructureGenerator
from repro.grammar.vocabulary import KEYWORD_DICT
from repro.structure.trie import TokenTrie

#: Keywords excluded from the inverted index (they occur in virtually
#: every structure, so their postings are useless for narrowing).
_INV_EXCLUDED = frozenset({"SELECT", "FROM", "WHERE"})


@dataclass
class StructureIndex:
    """Tries keyed by structure length, plus an inverted keyword index."""

    tries: dict[int, TokenTrie] = field(default_factory=dict)
    inverted: dict[str, list[tuple[str, ...]]] = field(default_factory=dict)
    _size: int = 0

    @classmethod
    def build(cls, generator: StructureGenerator | None = None) -> "StructureIndex":
        """Build the index from a structure generator (offline step)."""
        index = cls()
        generator = generator or StructureGenerator()
        index.add_all(generator.generate())
        return index

    @classmethod
    def from_structures(
        cls, structures: Iterable[tuple[str, ...]]
    ) -> "StructureIndex":
        index = cls()
        index.add_all(structures)
        return index

    def add_all(self, structures: Iterable[tuple[str, ...]]) -> None:
        for tokens in structures:
            self.add(tokens)

    def add(self, tokens: tuple[str, ...]) -> None:
        """Insert one structure."""
        length = len(tokens)
        trie = self.tries.get(length)
        if trie is None:
            trie = TokenTrie()
            self.tries[length] = trie
        before = len(trie)
        trie.insert(tokens)
        if len(trie) == before:
            return  # duplicate
        self._size += 1
        for keyword in set(tokens):
            if keyword in KEYWORD_DICT and keyword not in _INV_EXCLUDED:
                self.inverted.setdefault(keyword, []).append(tokens)

    def __len__(self) -> int:
        """Total number of indexed structures."""
        return self._size

    @property
    def lengths(self) -> list[int]:
        """Stored structure lengths, ascending."""
        return sorted(self.tries)

    @property
    def max_length(self) -> int:
        return max(self.tries) if self.tries else 0

    def node_count(self) -> int:
        """Total trie nodes across all lengths."""
        return sum(trie.node_count for trie in self.tries.values())

    def largest_trie_nodes(self) -> int:
        """Nodes in the largest trie (the ``p`` of the complexity bound)."""
        if not self.tries:
            return 0
        return max(trie.node_count for trie in self.tries.values())

    def inverted_postings(self, keywords: Iterable[str]) -> list[tuple[str, ...]] | None:
        """INV candidate retrieval: postings of the rarest present keyword.

        Returns None when no indexed keyword is present (the caller falls
        back to full search).
        """
        best: list[tuple[str, ...]] | None = None
        for keyword in keywords:
            postings = self.inverted.get(keyword.upper())
            if postings is None:
                continue
            if best is None or len(postings) < len(best):
                best = postings
        return best
