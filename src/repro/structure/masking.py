"""SplChar handling and literal masking (paper Section 3.1).

ASR often transcribes special characters as words ("less than" for
``<``); :func:`handle_splchars` rewrites those substrings into the
corresponding symbols.  :func:`mask_literals` then replaces every token
that is neither a keyword nor a SplChar with the placeholder ``x``,
producing the MaskOut string the search engine compares against
ground-truth structures, while remembering which transcription tokens
each placeholder covers (literal determination needs those positions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asr.verbalizer import WORDS_TO_SPLCHAR
from repro.grammar.vocabulary import (
    LITERAL_PLACEHOLDER,
    is_keyword,
    is_splchar,
)


#: Long, unambiguous spoken operator words matched fuzzily (ASR may
#: garble a consonant: "barenthesis").  Short words ("star", "dot") are
#: matched exactly to avoid swallowing real literals.
_FUZZY_SPLCHAR_WORDS = frozenset({"parenthesis", "asterisk", "equals", "greater"})


def _splchar_word_matches(token: str, word: str) -> bool:
    token = token.lower()
    if token == word:
        return True
    if word in _FUZZY_SPLCHAR_WORDS and len(token) >= len(word) - 2:
        # Tolerance scales with length: two edits only for long words
        # ("barenthesis" -> "parenthesis"); short operator words allow a
        # single edit, so literals like "quails" never collapse to "=".
        tolerance = 2 if len(word) >= 8 else 1
        return _levenshtein_at_most(token, word, tolerance)
    return False


def _levenshtein_at_most(a: str, b: str, k: int) -> bool:
    if abs(len(a) - len(b)) > k:
        return False
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(
                prev[j - 1]
                if ca == cb
                else 1 + min(prev[j - 1], prev[j], cur[j - 1])
            )
        if min(cur) > k:
            return False
        prev = cur
    return prev[-1] <= k


def handle_splchars(tokens: list[str]) -> list[str]:
    """Replace spoken operator words with their symbols.

    Longest spoken form first, so "less than" wins over a lone "less";
    long operator words are matched with small edit-distance tolerance.

    >>> handle_splchars("select star from t where a less than b".split())
    ['select', '*', 'from', 't', 'where', 'a', '<', 'b']
    """
    out: list[str] = []
    i = 0
    n = len(tokens)
    while i < n:
        replaced = False
        for words, symbol in WORDS_TO_SPLCHAR:
            span = len(words)
            window = tokens[i : i + span]
            if len(window) < span:
                continue
            if all(_splchar_word_matches(t, w) for t, w in zip(window, words)):
                out.append(symbol)
                i += span
                replaced = True
                break
        if not replaced:
            out.append(tokens[i])
            i += 1
    return out


@dataclass(frozen=True)
class MaskedTranscription:
    """Masking output: the MaskOut token string plus provenance.

    Attributes
    ----------
    masked:
        Token sequence with literals replaced by ``x``; keywords are
        uppercased, SplChars kept as symbols.
    source:
        The (splchar-handled) transcription tokens masking ran on.
    literal_spans:
        For each placeholder, in order, the index into ``source`` of the
        transcription token it replaced.
    """

    masked: tuple[str, ...]
    source: tuple[str, ...]
    literal_spans: tuple[int, ...]

    @property
    def placeholder_count(self) -> int:
        return len(self.literal_spans)


def mask_literals(tokens: list[str]) -> MaskedTranscription:
    """Mask every non-keyword, non-SplChar token with ``x``.

    Each literal word becomes its own placeholder (the paper's example:
    "select sales from employers wear name equals Jon" masks to
    ``SELECT x FROM x x x = x`` after SplChar handling).
    """
    masked: list[str] = []
    spans: list[int] = []
    for idx, token in enumerate(tokens):
        if is_keyword(token):
            masked.append(token.upper())
        elif is_splchar(token):
            masked.append(token)
        else:
            masked.append(LITERAL_PLACEHOLDER)
            spans.append(idx)
    return MaskedTranscription(
        masked=tuple(masked), source=tuple(tokens), literal_spans=tuple(spans)
    )


def preprocess_transcription(text: str) -> MaskedTranscription:
    """Full Section 3.1 preprocessing: tokenize, SplChar-handle, mask."""
    tokens = handle_splchars(text.split())
    return mask_literals(tokens)


def collapse_literal_runs(masked: tuple[str, ...]) -> tuple[str, ...]:
    """Collapse consecutive placeholders into one (future-work mode).

    The paper's conclusion proposes rewriting the grammar "in a manner
    that focuses more on literals and de-emphasizes structure": since
    ASR splits one literal into many tokens, a masked run ``x x x``
    usually *is* one literal.  Collapsing runs before the structure
    search makes the distance insensitive to splitting:

    >>> collapse_literal_runs(("SELECT", "x", "x", "FROM", "x"))
    ('SELECT', 'x', 'FROM', 'x')
    """
    out: list[str] = []
    for token in masked:
        if token == LITERAL_PLACEHOLDER and out and out[-1] == LITERAL_PLACEHOLDER:
            continue
        out.append(token)
    return tuple(out)
