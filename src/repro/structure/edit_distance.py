"""SQL-weighted token edit distance (paper Section 3.4, Algorithm 1).

A weighted longest-common-subsequence distance: only insertions and
deletions, at the token level.  Each operation costs the weight of the
token involved — keywords are weighted highest (ASR gets them right most
often, so a keyword mismatch is strong evidence against a candidate
structure), SplChars next, literals lowest:

    WK = 1.2      WS = 1.1      WL = 1.0

The paper notes the exact values matter less than the ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.grammar.vocabulary import TokenClass, classify_token, is_keyword


@dataclass(frozen=True)
class TokenWeights:
    """Per-class operation weights."""

    keyword: float = 1.2
    splchar: float = 1.1
    literal: float = 1.0

    def of(self, token: str) -> float:
        cls = classify_token(token)
        if cls is TokenClass.KEYWORD:
            return self.keyword
        if cls is TokenClass.SPLCHAR:
            return self.splchar
        return self.literal

    @property
    def max_weight(self) -> float:
        return max(self.keyword, self.splchar, self.literal)

    @property
    def min_weight(self) -> float:
        return min(self.keyword, self.splchar, self.literal)


DEFAULT_WEIGHTS = TokenWeights()

#: Unweighted variant, used by the weighted-vs-unweighted ablation and by
#: Token Edit Distance (TED) evaluation, which the paper defines as plain
#: insert/delete counting.
UNIT_WEIGHTS = TokenWeights(1.0, 1.0, 1.0)


def token_weight(token: str, weights: TokenWeights = DEFAULT_WEIGHTS) -> float:
    """Operation weight of one token."""
    return weights.of(token)


def weighted_edit_distance(
    source: list[str] | tuple[str, ...],
    target: list[str] | tuple[str, ...],
    weights: TokenWeights = DEFAULT_WEIGHTS,
) -> float:
    """Insert/delete-only edit distance between token sequences.

    Matches compare tokens case-insensitively for keywords and exactly
    otherwise (placeholders and symbols are single canonical tokens).

    >>> weighted_edit_distance(["SELECT", "x"], ["SELECT", "x"])
    0.0
    >>> weighted_edit_distance(["SELECT"], ["SELECT", "x"])
    1.0
    """
    a = [_canonical(t) for t in source]
    b = [_canonical(t) for t in target]
    n, m = len(a), len(b)
    weights_a = [weights.of(t) for t in a]
    weights_b = [weights.of(t) for t in b]

    # Column-by-column DP over the target; prev[i] = dp(i, j-1).
    prev = [0.0] * (n + 1)
    for i in range(1, n + 1):
        prev[i] = prev[i - 1] + weights_a[i - 1]
    for j in range(1, m + 1):
        cur = [prev[0] + weights_b[j - 1]]
        for i in range(1, n + 1):
            if a[i - 1] == b[j - 1]:
                cur.append(prev[i - 1])
            else:
                insert_cost = prev[i] + weights_b[j - 1]
                delete_cost = cur[i - 1] + weights_a[i - 1]
                cur.append(min(insert_cost, delete_cost))
        prev = cur
    return prev[n]


def token_edit_distance(
    source: list[str] | tuple[str, ...],
    target: list[str] | tuple[str, ...],
) -> float:
    """Unweighted insert/delete token distance (the paper's TED metric)."""
    return weighted_edit_distance(source, target, UNIT_WEIGHTS)


def edit_distance_bounds(
    n: int, m: int, weights: TokenWeights = DEFAULT_WEIGHTS
) -> tuple[float, float]:
    """Proposition 1: bounds on the distance of two structures.

    Given structures with ``n`` and ``m`` tokens, the distance ``d``
    satisfies ``|m - n| * WL <= d <= (m + n) * WK``.
    """
    lower = abs(m - n) * weights.min_weight
    upper = (m + n) * weights.max_weight
    return lower, upper


@lru_cache(maxsize=65536)
def _canonical(token: str) -> str:
    """Canonical comparison form of one token, memoized.

    Bounded cache: the keyword/SplChar vocabulary is tiny and literal
    placeholders dominate real workloads, so hits are near-universal.
    """
    return token.upper() if is_keyword(token) else token
