"""Trie similarity search with bidirectional bounds (paper Section 3.4).

Implements the search procedure of Box 2: for each candidate trie (one
per structure length), a depth-first traversal computes one dynamic-
programming column per node, pruning subtrees whose column minimum
already exceeds the best distance found; whole tries are skipped when
Proposition 1's lower bound beats the current best (BDB).  Candidate
lengths are visited closest-to-``m`` first, so the best-so-far tightens
quickly and BDB skips fire as early as possible.

Three search kernels produce bit-identical results:

- ``kernel="compiled"`` (default) is the fast path: a level-synchronous
  kernel over the :class:`~repro.structure.compiled.CompiledStructureIndex`
  breadth-first level plan.  It vectorizes the DP across every node of a
  level with numpy while keeping the sequential per-position recurrence,
  so each cell sees exactly the arithmetic (same operations, same order)
  the reference performs — distances are bit-identical, not just close.
  It trades the node-level branch-and-bound prune for trie-level BDB
  plus C-speed columns, which is a large net win (see
  ``benchmarks/bench_search_perf.py``).  Because it forgoes the
  depth-first walk it cannot reproduce DAP's traversal-dependent tie
  order, so engines with ``use_dap`` drop to the flat kernel.
- ``kernel="flat"`` is the scalar lowering: a depth-first walk over the
  compiled first-child/next-sibling arrays — interned token ids,
  array-indexed weights, and a running column minimum so the
  ``min(col)`` prune needs no second pass.  Traversal, pruning, and all
  statistics match the reference exactly.
- ``kernel="reference"`` walks the original dict-of-dicts
  :class:`~repro.structure.trie.TrieNode` objects — the readable
  specification the compiled kernels are property-tested against.

Two approximate accuracy-latency trade-offs from Appendix D.3 are
available as flags:

- **DAP** (Diversity-Aware Pruning): among sibling branches that differ
  only in a token from the *prime superset* ({AVG,COUNT,SUM,MAX,MIN},
  {AND,OR}, {=,<,>}), only the locally best branch is explored.
- **INV** (Inverted Indexes): when the masked transcription contains an
  indexed keyword, the search runs over a (lazily built) trie subindex
  holding only the structures containing the rarest present keyword.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.grammar.vocabulary import PRIME_SUPERSET
from repro.structure.compiled import CompiledStructureIndex, CompiledTrie
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.indexer import StructureIndex
from repro.structure.trie import TrieNode

_INF = float("inf")

#: Search-kernel names (see module docstring).
KERNEL_COMPILED = "compiled"
KERNEL_FLAT = "flat"
KERNEL_REFERENCE = "reference"
#: Stats label for searches fanned out by a sharded executor (not a
#: constructible engine kernel: the per-shard workers run ``compiled``).
KERNEL_SHARDED = "sharded"


@dataclass(frozen=True)
class SearchResult:
    """One matched structure with its weighted edit distance."""

    structure: tuple[str, ...]
    distance: float


@dataclass
class SearchStats:
    """Instrumentation for the ablation study (Figure 15).

    ``candidates_scored`` counts the terminal structures whose full
    distance was computed and offered to the top-k — on every path,
    with or without the INV subindex.

    All counters measure *work actually done*, so their values are
    kernel-specific: ``flat`` and ``reference`` agree exactly (same
    depth-first walk, same prunes), while the level-synchronous
    ``compiled`` kernel computes every column of each searched trie
    (no node-level prune) and therefore reports higher
    ``nodes_visited`` / ``dp_cells`` / ``candidates_scored`` for the
    same bit-identical results.  ``tries_searched`` / ``tries_skipped``
    agree across all three kernels.

    ``levels_visited`` / ``rows_pruned`` / ``beam_bound_updates`` are
    phases of the compiled kernel only (zero elsewhere).  ``kernel`` is
    the kernel that actually ran, and ``dap_fallback`` marks a search
    where a ``compiled`` engine with ``use_dap`` dropped to the flat
    kernel (DAP's tie order is traversal-dependent) — both excluded
    from equality so the flat/reference parity assertions stay exact.
    ``result_cache_hit`` marks stats returned from the LRU result cache
    (the counters then describe the original, cached search).

    Under a sharded executor (``kernel == "sharded"``) the counters are
    sums over every shard leg that ran, and the ``shards_*`` fields
    describe the scatter itself: how many shards exist, how many were
    actually searched (routing can skip whole shards), and how many legs
    fell back to the coordinator's in-process engine (worker dead, over
    deadline, or breaker open).  They are excluded from equality like
    the other deployment-shape fields.
    """

    nodes_visited: int = 0
    dp_cells: int = 0
    tries_searched: int = 0
    tries_skipped: int = 0
    candidates_scored: int = 0
    levels_visited: int = 0
    rows_pruned: int = 0
    beam_bound_updates: int = 0
    inv_cache_hits: int = 0
    inv_cache_builds: int = 0
    kernel: str = field(default="", compare=False)
    dap_fallback: bool = field(default=False, compare=False)
    result_cache_hit: bool = field(default=False, compare=False)
    shards_total: int = field(default=0, compare=False)
    shards_searched: int = field(default=0, compare=False)
    shards_failed: int = field(default=0, compare=False)


@dataclass
class _TopK:
    """Bounded best-k list of (distance, structure)."""

    k: int
    entries: list[tuple[float, tuple[str, ...]]] = field(default_factory=list)

    def threshold(self) -> float:
        if len(self.entries) < self.k:
            return _INF
        return self.entries[-1][0]

    def offer(self, distance: float, structure: tuple[str, ...]) -> None:
        if distance >= self.threshold():
            return
        if any(s == structure for _, s in self.entries):
            return
        self.entries.append((distance, structure))
        self.entries.sort(key=lambda e: e[0])
        del self.entries[self.k :]

    def results(self) -> list[SearchResult]:
        return [SearchResult(structure=s, distance=d) for d, s in self.entries]


@dataclass
class StructureSearchEngine:
    """Similarity search over a :class:`StructureIndex`.

    Parameters
    ----------
    index:
        The length-partitioned structure index.
    weights:
        Edit-distance weights (WK/WS/WL).
    use_bdb:
        Apply Proposition 1's bidirectional bounds to skip tries
        (accuracy-preserving; on by default).
    use_dap / use_inv:
        The approximate optimizations (off by default, as in the paper).
    kernel:
        ``"compiled"`` (level-synchronous fast path, default),
        ``"flat"`` (scalar walk over the same compiled arrays), or
        ``"reference"`` (node-object specification); results are
        bit-identical across all three.
    max_cached_results / max_inv_subindexes:
        LRU bounds on the per-engine result cache and the per-keyword
        INV subindex cache, so long-running service batches cannot grow
        memory without limit.
    executor:
        Optional sharded fan-out executor (duck-typed; see
        :class:`repro.core.shards.ShardedSearchExecutor`).  When set —
        and the engine is on the ``compiled`` kernel without DAP — full
        index searches are delegated to it; the executor must have been
        built over this engine's compiled index with the same weights
        and BDB setting, which the service wiring guarantees.  INV
        subindex searches and the other kernels always run in-process.
    """

    index: StructureIndex
    weights: TokenWeights = DEFAULT_WEIGHTS
    use_bdb: bool = True
    use_dap: bool = False
    use_inv: bool = False
    cache_results: bool = True
    kernel: str = KERNEL_COMPILED
    max_cached_results: int = 4096
    max_inv_subindexes: int = 64
    executor: object | None = None
    _cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _inv_subindexes: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.kernel not in (KERNEL_COMPILED, KERNEL_FLAT, KERNEL_REFERENCE):
            raise ValueError(f"unknown search kernel: {self.kernel!r}")

    def search(
        self, masked: tuple[str, ...] | list[str], k: int = 1
    ) -> tuple[list[SearchResult], SearchStats]:
        """Find the ``k`` structures closest to ``masked``.

        Returns the results (ascending distance) and search statistics.
        With ``use_dap``/``use_inv`` off, results are exact: identical to
        scoring every indexed structure.  Repeated searches for the same
        masked string are served from a bounded LRU cache (masked
        transcriptions repeat heavily across a workload's n-best
        alternatives).
        """
        masked = tuple(masked)
        if self.cache_results:
            cached = self._cache.get((masked, k))
            if cached is not None:
                self._cache.move_to_end((masked, k))
                results, stats = cached
                hit_stats = copy.copy(stats)
                hit_stats.result_cache_hit = True
                return results, hit_stats
        results, stats = self._search_uncached(masked, k)
        if self.cache_results:
            self._cache[(masked, k)] = (results, stats)
            while len(self._cache) > self.max_cached_results:
                self._cache.popitem(last=False)
        return results, stats

    def search_span(
        self, span_tokens: tuple[str, ...] | list[str], k: int = 1
    ) -> tuple[list[SearchResult], SearchStats]:
        """Span-scoped search: decode one clause span in isolation.

        The serving layer's incremental session decoder calls this once
        per clause span; the contract it adds over :meth:`search` is
        **replayability** — for a fixed engine and index, the same span
        tokens always yield the same results *and the same stats
        counters* (an LRU result-cache hit replays the original
        counters, flagging only the ``compare=False``
        ``result_cache_hit`` bit).  A cached span decode spliced into a
        later turn is therefore bit-identical to re-searching it, and a
        correction turn only pays for the clause it changed.  The level
        plan, per-level weight tables, and inverted subindexes of the
        compiled/flat kernel are owned by the engine and reused across
        spans automatically.
        """
        return self.search(span_tokens, k=k)

    def _search_uncached(
        self, masked: tuple[str, ...], k: int
    ) -> tuple[list[SearchResult], SearchStats]:
        stats = SearchStats()
        top = _TopK(k=max(k, 1))

        if self.use_inv:
            subindex = self._rarest_keyword_subindex(masked, stats)
            if subindex is not None:
                self._search_index(subindex, masked, top, stats)
                return top.results(), stats

        executor = self.executor
        if (
            executor is not None
            and self.kernel == KERNEL_COMPILED
            and not self.use_dap
        ):
            return executor.search(masked, max(k, 1), stats=stats)

        self._search_index(self.index, masked, top, stats)
        return top.results(), stats

    def _rarest_keyword_subindex(
        self, masked: tuple[str, ...], stats: SearchStats
    ) -> StructureIndex | None:
        """INV: lazy per-keyword trie subindex over the rarest present
        keyword's postings (Appendix D.3), kept in a bounded LRU."""
        best_keyword = None
        best_size = None
        for token in masked:
            postings = self.index.inverted.get(token.upper())
            if postings is None:
                continue
            if best_size is None or len(postings) < best_size:
                best_keyword, best_size = token.upper(), len(postings)
        if best_keyword is None:
            return None
        subindex = self._inv_subindexes.get(best_keyword)
        if subindex is None:
            stats.inv_cache_builds += 1
            subindex = StructureIndex.from_structures(
                self.index.inverted[best_keyword]
            )
            self._inv_subindexes[best_keyword] = subindex
            while len(self._inv_subindexes) > self.max_inv_subindexes:
                self._inv_subindexes.popitem(last=False)
        else:
            stats.inv_cache_hits += 1
            self._inv_subindexes.move_to_end(best_keyword)
        return subindex

    def _search_index(
        self,
        index: StructureIndex,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        """Box 2's closest-length-first ordering with BDB pruning over
        any length-partitioned index, dispatched to the active kernel."""
        if self.kernel != KERNEL_REFERENCE:
            compiled = index.compiled(self.weights)
            # DAP's result depends on depth-first traversal order (the
            # surviving prime branch is explored first), which the
            # level-synchronous kernel cannot reproduce; keep results
            # bit-identical by using the scalar flat walk for DAP.
            if self.kernel == KERNEL_FLAT or self.use_dap:
                stats.kernel = KERNEL_FLAT
                stats.dap_fallback = self.kernel == KERNEL_COMPILED
                self._search_flat(compiled, masked, top, stats)
            else:
                stats.kernel = KERNEL_COMPILED
                self._search_vector(compiled, masked, top, stats)
            return
        stats.kernel = KERNEL_REFERENCE
        lengths = self._search_order(len(masked), index.lengths)
        min_literal_weight = self.weights.min_weight
        for length in lengths:
            lower = abs(len(masked) - length) * min_literal_weight
            if self.use_bdb and lower >= top.threshold():
                stats.tries_skipped += 1
                continue
            stats.tries_searched += 1
            self._search_trie(index.tries[length].root, masked, top, stats)

    def _search_order(self, m: int, lengths: list[int]) -> list[int]:
        """Lengths interleaved by true distance from ``m``, closest first
        (ties prefer the shorter length), so the Proposition 1 lower
        bound — monotone in ``|j - m|`` — starts skipping as soon as the
        best-so-far allows."""
        return sorted(lengths, key=lambda j: (abs(j - m), j))

    # -- level-synchronous kernel (kernel="compiled") -----------------------

    def _search_vector(
        self,
        compiled: CompiledStructureIndex,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        """Breadth-first DP over whole trie levels with numpy.

        The recurrence stays sequential along the masked positions but
        runs across all nodes of a level at once; every cell performs
        the reference's exact operations in the reference's exact order
        (a masked copy for matches, one add + one min otherwise), so
        distances are bit-identical.  Box 2's column-minimum prune is
        applied per *level* — rows whose minimum exceeds the best-so-far
        are compacted away before the next level — which prunes a subset
        of what the depth-first reference prunes (the threshold here
        only tightens at trie boundaries), never more.  Surviving
        terminals are offered in reversed level order — the same
        left-to-right mirror the reference's stack walk uses — which
        yields the identical top-k: every terminal this kernel scores
        but the reference pruned is strictly worse than the final
        threshold, and tie acceptance at the threshold depends only on
        the shared offer order of the remaining candidates.
        """
        m = len(masked)
        m1 = m + 1
        min_literal_weight = self.weights.min_weight
        token_ids = compiled.token_ids
        mw = np.array([self.weights.of(t) for t in masked], dtype=np.float64)
        # match_tab[i, tid]: does masked position i hold interned token tid?
        match_tab = np.zeros((m, max(len(compiled.tokens), 1)), dtype=bool)
        for i, token in enumerate(masked):
            tid = token_ids.get(token, -1)
            if tid >= 0:
                match_tab[i, tid] = True
        first_col = np.empty(m1, dtype=np.float64)
        first_col[0] = 0.0
        np.add.accumulate(mw, out=first_col[1:])
        sentences = compiled.sentences
        threshold = top.threshold
        offer = top.offer
        mask_weights = list(mw)
        masked_ids = [token_ids.get(t, -1) for t in masked]
        buf = np.empty(0, dtype=np.float64)
        cbuf = np.empty(0, dtype=np.float64)
        # Upper bound on the final k-th best distance, seeded by a cheap
        # scalar beam probe of the first searched trie.  Pruning against
        # it (never offering with it) is exact: a row whose column
        # minimum exceeds a valid bound on the k-th best distance cannot
        # produce a top-k terminal.  BDB skip decisions deliberately use
        # only the true threshold so ``tries_*`` stats match the
        # reference exactly.
        bound = _INF
        for length in self._search_order(m, compiled.lengths):
            lower = abs(m - length) * min_literal_weight
            if self.use_bdb and lower >= threshold():
                stats.tries_skipped += 1
                continue
            stats.tries_searched += 1
            trie = compiled.tries[length]
            if bound == _INF:
                bound = self._beam_bound(
                    trie, masked_ids, mask_weights, list(first_col), top.k
                )
                if bound != _INF:
                    stats.beam_bound_updates += 1
            # DP band for this trie: a cell at masked position i and trie
            # depth d has true value >= |i - d| * min_weight, so cells
            # outside the band can keep their insert-only initialization
            # (an upper bound); every cell whose true value is <= the
            # band cutoff stays bit-exact because a <=-cutoff path never
            # leaves the band.  Offers are filtered to values <= the
            # cutoff below, which loses nothing: all true top-k
            # distances are.  Thresholds only tighten mid-trie, so the
            # cutoff fixed here stays valid for the whole trie.
            band_cut = threshold()
            if bound < band_cut:
                band_cut = bound
            banded = band_cut != _INF and min_literal_weight > 0
            delta = int(band_cut / min_literal_weight) if banded else 0
            node_weight = np.frombuffer(trie.node_weight)
            prev = first_col.reshape(m1, 1)
            # Static rows of the previous level whose columns survived,
            # sorted, aligned with ``prev``'s columns; None while every
            # row is alive.  The layout is parent-major, so each node's
            # children are a contiguous span of the next level — the
            # surviving rows' children are gathered by span arithmetic,
            # O(alive + children), never O(level).
            alive_idx = None
            plevel = None
            for depth, level in enumerate(trie.levels(), start=1):
                if alive_idx is None:
                    parent_cols = level.parent_pos
                    order = level.order
                    token_id = level.token_id
                    sentence_id = level.sentence_id
                    idx = None
                else:
                    counts = plevel.child_count[alive_idx]
                    total = int(counts.sum())
                    if total == 0:
                        break
                    starts = plevel.child_start[alive_idx]
                    ends = np.cumsum(counts)
                    idx = np.repeat(starts - ends + counts, counts)
                    idx += np.arange(total)
                    parent_cols = np.repeat(np.arange(alive_idx.size), counts)
                    order = level.order[idx]
                    token_id = level.token_id[idx]
                    sentence_id = level.sentence_id[idx]
                plevel = level
                width = len(order)
                stats.levels_visited += 1
                if banded:
                    blo = depth - delta
                    if blo < 0:
                        blo = 0
                    hi = depth + delta
                    if hi > m:
                        hi = m
                    if blo > hi:
                        # The whole level (and everything deeper) lies
                        # outside the band: every true value exceeds the
                        # cutoff, hence exceeds any current or future
                        # prune threshold for this trie.
                        break
                else:
                    blo = 0
                    hi = m
                parent = prev[:, parent_cols]
                col = parent + node_weight[order]  # rows start as inserts
                match = match_tab[:, token_id]
                if len(buf) < width:
                    buf = np.empty(width, dtype=np.float64)
                    cbuf = np.empty(width, dtype=np.float64)
                dele = buf[:width]
                rows = list(col)
                parent_rows = list(parent)
                match_rows = list(match)
                lo = blo if blo > 0 else 1
                # Running minimum over the band rows, maintained inline
                # so the prune below never re-reduces a strided column.
                cmin = cbuf[:width]
                have_cmin = blo == 0
                if have_cmin:
                    np.copyto(cmin, rows[0])
                for i in range(lo, hi + 1):
                    row = rows[i]
                    np.add(rows[i - 1], mask_weights[i - 1], out=dele)
                    np.minimum(row, dele, out=row)
                    np.copyto(row, parent_rows[i - 1], where=match_rows[i - 1])
                    if have_cmin:
                        np.minimum(cmin, row, out=cmin)
                    else:
                        np.copyto(cmin, row)
                        have_cmin = True
                stats.nodes_visited += width
                stats.dp_cells += width * m1
                if level.has_terminals:
                    term_rows = (sentence_id >= 0).nonzero()[0]
                    if term_rows.size:
                        stats.candidates_scored += int(term_rows.size)
                        dists = col[m, term_rows]
                        term_sids = sentence_id[term_rows]
                        # Offers below the current threshold are the only
                        # ones that can mutate the top-k (offer() rejects
                        # the rest and the threshold only tightens), so
                        # the prefilter is exact; refreshing it every
                        # chunk keeps the Python offer loop short once
                        # the top-k fills.
                        pos = int(term_rows.size)
                        while pos > 0:
                            at = pos - 256 if pos > 256 else 0
                            cut = threshold()
                            chunk = dists[at:pos]
                            sel = chunk < cut
                            if band_cut != _INF:
                                sel &= chunk <= band_cut
                            for j in sel.nonzero()[0][::-1]:
                                offer(
                                    float(chunk[j]),
                                    sentences[term_sids[at + j]],
                                )
                            pos = at
                # Column-minimum prune (Box 2) for the next level,
                # against the tighter of the true threshold and the
                # seeded bound.  The minimum is taken over band rows
                # only: a completion with true distance <= the cut runs
                # through a cell whose true value is <= the cut <= the
                # band cutoff, and such a cell is in-band and computed
                # exactly, so it is seen here.
                cut = threshold()
                if bound < cut:
                    cut = bound
                if cut != _INF:
                    keep = cmin <= cut
                    kidx = keep.nonzero()[0]
                    if kidx.size == 0:
                        stats.rows_pruned += width
                        break
                    if kidx.size < width:
                        stats.rows_pruned += width - int(kidx.size)
                        alive_idx = kidx if idx is None else idx[kidx]
                        prev = col[:, kidx]
                        continue
                alive_idx = idx
                prev = col

    @staticmethod
    def _beam_bound(
        trie: CompiledTrie,
        masked_ids: list[int],
        mask_weights: list[float],
        first_col: list[float],
        k: int,
    ) -> float:
        """Upper bound on the k-th best distance via a width-``k`` beam.

        Walks one trie level by level keeping the ``k`` most promising
        partial columns (scalar DP, a few thousand cells at most).  Any
        ``k`` genuine terminal distances bound the k-th best overall
        from above, so the result is a valid prune cutoff no matter how
        the beam chose — accuracy is never at stake, only prune power.
        Returns ``inf`` when fewer than ``k`` terminals are reached.
        """
        fc = trie.first_child
        ns = trie.next_sibling
        tids = trie.token_id
        node_w = trie.node_weight
        sids = trie.sentence_id
        n = len(masked_ids)
        found: list[float] = []
        beam: list[tuple[float, int, list[float]]] = [(0.0, 0, first_col)]
        while beam:
            expanded: list[tuple[float, int, list[float]]] = []
            for _, node, col in beam:
                child = fc[node]
                while child >= 0:
                    w = node_w[child]
                    t = tids[child]
                    prev_im1 = col[0]
                    v = prev_im1 + w
                    ncol = [v]
                    append = ncol.append
                    for i in range(1, n + 1):
                        prev_i = col[i]
                        if masked_ids[i - 1] == t:
                            v = prev_im1
                        else:
                            a = prev_i + w
                            b = v + mask_weights[i - 1]
                            v = a if a < b else b
                        append(v)
                        prev_im1 = prev_i
                    if sids[child] >= 0:
                        found.append(v)
                    expanded.append((v, child, ncol))
                    child = ns[child]
            expanded.sort(key=lambda e: e[0])
            beam = expanded[:k]
        if len(found) < k:
            return _INF
        found.sort()
        return found[k - 1]

    # -- flat scalar kernel (kernel="flat", and DAP) ------------------------

    def _search_flat(
        self,
        compiled: CompiledStructureIndex,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        m = len(masked)
        lengths = self._search_order(m, compiled.lengths)
        min_literal_weight = self.weights.min_weight
        token_ids = compiled.token_ids
        weights_of = self.weights.of
        masked_ids = [token_ids.get(t, -1) for t in masked]
        mask_weights = [weights_of(t) for t in masked]
        # Per-id flag: does the id occur in the masked input?  Nodes whose
        # token cannot match anywhere take a comparison-free DP loop.
        matchable = bytearray(len(compiled.tokens))
        for tid in masked_ids:
            if tid >= 0:
                matchable[tid] = 1
        for length in lengths:
            lower = abs(m - length) * min_literal_weight
            if self.use_bdb and lower >= top.threshold():
                stats.tries_skipped += 1
                continue
            stats.tries_searched += 1
            self._search_flat_trie(
                compiled, compiled.tries[length],
                masked_ids, mask_weights, matchable, top, stats,
            )

    def _search_flat_trie(
        self,
        compiled: CompiledStructureIndex,
        trie: CompiledTrie,
        masked_ids: list[int],
        mask_weights: list[float],
        matchable: bytearray,
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        """The flat-array DP kernel.

        Traversal order, pruning decisions, and all statistics are
        bit-identical to :meth:`_search_trie`; the loop body differs only
        in representation: interned integer ids instead of strings,
        array-indexed weights instead of dict lookups, and a running
        column minimum instead of a second ``min(col)`` pass.
        """
        n = len(masked_ids)
        n1 = n + 1
        fc = trie.first_child
        ns = trie.next_sibling
        tids = trie.token_id
        node_w = trie.node_weight
        sids = trie.sentence_id
        sentences = compiled.sentences
        prime = compiled.prime
        use_dap = self.use_dap
        offer = top.offer
        threshold = top.threshold
        pairs = list(zip(masked_ids, mask_weights))
        nodes = 0
        cells = 0

        first_col = [0.0] * n1
        acc = 0.0
        for i in range(n):
            acc += mask_weights[i]
            first_col[i + 1] = acc

        def descend(node: int, col: list[float]) -> None:
            nonlocal nodes, cells
            out = []
            child = fc[node]
            while child >= 0:
                w = node_w[child]
                t = tids[child]
                col_iter = iter(col)
                prev_im1 = next(col_iter)
                v = prev_im1 + w
                ncol = [v]
                append = ncol.append
                cmin = v
                if matchable[t]:
                    for (mi, mw), prev_i in zip(pairs, col_iter):
                        if mi == t:
                            v = prev_im1
                        else:
                            a = prev_i + w
                            b = v + mw
                            v = a if a < b else b
                        append(v)
                        if v < cmin:
                            cmin = v
                        prev_im1 = prev_i
                else:
                    for mw, prev_i in zip(mask_weights, col_iter):
                        a = prev_i + w
                        b = v + mw
                        v = a if a < b else b
                        append(v)
                        if v < cmin:
                            cmin = v
                out.append((child, ncol, cmin))
                child = ns[child]
            nodes += len(out)
            cells += len(out) * n1
            if use_dap:
                out = self._dap_filter_flat(out, tids, prime)
            for entry in reversed(out):
                c, ncol, cmin = entry
                sid = sids[c]
                if sid >= 0:
                    stats.candidates_scored += 1
                    offer(ncol[n], sentences[sid])
                if cmin > threshold():
                    continue
                descend(c, ncol)

        descend(0, first_col)
        stats.nodes_visited += nodes
        stats.dp_cells += cells

    def _dap_filter_flat(self, expanded, tids, prime):
        """Keep only the best branch among prime-superset siblings."""
        prime_entries = [e for e in expanded if prime[tids[e[0]]]]
        if len(prime_entries) <= 1:
            return expanded
        best = min(prime_entries, key=lambda e: e[1][-1])
        others = [e for e in expanded if not prime[tids[e[0]]]]
        return others + [best]

    # -- reference kernel ---------------------------------------------------

    def _search_trie(
        self,
        root: TrieNode,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        n = len(masked)
        weights_of = self.weights.of
        mask_weights = [weights_of(t) for t in masked]
        first_col = [0.0] * (n + 1)
        for i in range(1, n + 1):
            first_col[i] = first_col[i - 1] + mask_weights[i - 1]
        token_weight_cache: dict[str, float] = {}
        nodes = 0
        cells = 0

        def next_column(prev_col: list[float], token: str) -> list[float]:
            tw = token_weight_cache.get(token)
            if tw is None:
                tw = weights_of(token)
                token_weight_cache[token] = tw
            col = [prev_col[0] + tw]
            append = col.append
            for i in range(1, n + 1):
                if masked[i - 1] == token:
                    append(prev_col[i - 1])
                else:
                    insert_cost = prev_col[i] + tw
                    delete_cost = col[i - 1] + mask_weights[i - 1]
                    append(
                        insert_cost if insert_cost < delete_cost else delete_cost
                    )
            return col

        def expand(node: TrieNode, col: list[float]):
            nonlocal nodes, cells
            out = []
            for token, child in node.children.items():
                child_col = next_column(col, token)
                nodes += 1
                cells += n + 1
                out.append((child, child_col))
            if self.use_dap:
                out = self._dap_filter(out)
            return out

        stack = expand(root, first_col)
        while stack:
            node, col = stack.pop()
            if node.terminal and node.sentence is not None:
                stats.candidates_scored += 1
                top.offer(col[n], node.sentence)
            if min(col) > top.threshold():
                continue
            stack.extend(expand(node, col))
        stats.nodes_visited += nodes
        stats.dp_cells += cells

    def _dap_filter(
        self, expanded: list[tuple[TrieNode, list[float]]]
    ) -> list[tuple[TrieNode, list[float]]]:
        """Keep only the best branch among prime-superset siblings."""
        prime = [
            (child, col)
            for child, col in expanded
            if child.token in PRIME_SUPERSET
        ]
        if len(prime) <= 1:
            return expanded
        best = min(prime, key=lambda pair: pair[1][-1])
        others = [
            (child, col)
            for child, col in expanded
            if child.token not in PRIME_SUPERSET
        ]
        return others + [best]
