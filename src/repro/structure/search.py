"""Trie similarity search with bidirectional bounds (paper Section 3.4).

Implements the search procedure of Box 2: for each candidate trie (one
per structure length), a depth-first traversal computes one dynamic-
programming column per node, pruning subtrees whose column minimum
already exceeds the best distance found; whole tries are skipped when
Proposition 1's lower bound beats the current best (BDB).

Two approximate accuracy-latency trade-offs from Appendix D.3 are
available as flags:

- **DAP** (Diversity-Aware Pruning): among sibling branches that differ
  only in a token from the *prime superset* ({AVG,COUNT,SUM,MAX,MIN},
  {AND,OR}, {=,<,>}), only the locally best branch is explored.
- **INV** (Inverted Indexes): when the masked transcription contains an
  indexed keyword, the search runs over a (lazily built) trie subindex
  holding only the structures containing the rarest present keyword.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.vocabulary import PRIME_SUPERSET
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.indexer import StructureIndex
from repro.structure.trie import TrieNode

_INF = float("inf")


@dataclass(frozen=True)
class SearchResult:
    """One matched structure with its weighted edit distance."""

    structure: tuple[str, ...]
    distance: float


@dataclass
class SearchStats:
    """Instrumentation for the ablation study (Figure 15)."""

    nodes_visited: int = 0
    dp_cells: int = 0
    tries_searched: int = 0
    tries_skipped: int = 0
    candidates_scored: int = 0


@dataclass
class _TopK:
    """Bounded best-k list of (distance, structure)."""

    k: int
    entries: list[tuple[float, tuple[str, ...]]] = field(default_factory=list)

    def threshold(self) -> float:
        if len(self.entries) < self.k:
            return _INF
        return self.entries[-1][0]

    def offer(self, distance: float, structure: tuple[str, ...]) -> None:
        if distance >= self.threshold():
            return
        if any(s == structure for _, s in self.entries):
            return
        self.entries.append((distance, structure))
        self.entries.sort(key=lambda e: e[0])
        del self.entries[self.k :]

    def results(self) -> list[SearchResult]:
        return [SearchResult(structure=s, distance=d) for d, s in self.entries]


@dataclass
class StructureSearchEngine:
    """Similarity search over a :class:`StructureIndex`.

    Parameters
    ----------
    index:
        The length-partitioned structure index.
    weights:
        Edit-distance weights (WK/WS/WL).
    use_bdb:
        Apply Proposition 1's bidirectional bounds to skip tries
        (accuracy-preserving; on by default).
    use_dap / use_inv:
        The approximate optimizations (off by default, as in the paper).
    """

    index: StructureIndex
    weights: TokenWeights = DEFAULT_WEIGHTS
    use_bdb: bool = True
    use_dap: bool = False
    use_inv: bool = False
    cache_results: bool = True
    _cache: dict = field(default_factory=dict, repr=False)
    _inv_subindexes: dict = field(default_factory=dict, repr=False)

    def search(
        self, masked: tuple[str, ...] | list[str], k: int = 1
    ) -> tuple[list[SearchResult], SearchStats]:
        """Find the ``k`` structures closest to ``masked``.

        Returns the results (ascending distance) and search statistics.
        With ``use_dap``/``use_inv`` off, results are exact: identical to
        scoring every indexed structure.  Repeated searches for the same
        masked string are served from a cache (masked transcriptions
        repeat heavily across a workload's n-best alternatives).
        """
        masked = tuple(masked)
        if self.cache_results:
            cached = self._cache.get((masked, k))
            if cached is not None:
                return cached
        results, stats = self._search_uncached(masked, k)
        if self.cache_results:
            self._cache[(masked, k)] = (results, stats)
        return results, stats

    def _search_uncached(
        self, masked: tuple[str, ...], k: int
    ) -> tuple[list[SearchResult], SearchStats]:
        stats = SearchStats()
        top = _TopK(k=max(k, 1))

        if self.use_inv:
            subindex = self._rarest_keyword_subindex(masked)
            if subindex is not None:
                stats.candidates_scored = len(subindex)
                self._search_index(subindex, masked, top, stats)
                return top.results(), stats

        self._search_index(self.index, masked, top, stats)
        return top.results(), stats

    def _rarest_keyword_subindex(
        self, masked: tuple[str, ...]
    ) -> StructureIndex | None:
        """INV: lazy per-keyword trie subindex over the rarest present
        keyword's postings (Appendix D.3)."""
        best_keyword = None
        best_size = None
        for token in masked:
            postings = self.index.inverted.get(token.upper())
            if postings is None:
                continue
            if best_size is None or len(postings) < best_size:
                best_keyword, best_size = token.upper(), len(postings)
        if best_keyword is None:
            return None
        subindex = self._inv_subindexes.get(best_keyword)
        if subindex is None:
            subindex = StructureIndex.from_structures(
                self.index.inverted[best_keyword]
            )
            self._inv_subindexes[best_keyword] = subindex
        return subindex

    def _search_index(
        self,
        index: StructureIndex,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        """Box 2's two-pass length ordering with BDB pruning over any
        length-partitioned index."""
        lengths = self._search_order(len(masked), index)
        min_literal_weight = self.weights.min_weight
        for length in lengths:
            lower = abs(len(masked) - length) * min_literal_weight
            if self.use_bdb and lower >= top.threshold():
                stats.tries_skipped += 1
                continue
            stats.tries_searched += 1
            self._search_trie(index.tries[length].root, masked, top, stats)

    def _search_order(self, m: int, index: StructureIndex) -> list[int]:
        """Lengths closest to ``m`` first (Box 2's two passes)."""
        lengths = index.lengths
        down = [j for j in reversed(lengths) if j <= m]
        up = [j for j in lengths if j > m]
        return down + up

    # -- trie traversal -----------------------------------------------------

    def _search_trie(
        self,
        root: TrieNode,
        masked: tuple[str, ...],
        top: _TopK,
        stats: SearchStats,
    ) -> None:
        n = len(masked)
        weights_of = self.weights.of
        mask_weights = [weights_of(t) for t in masked]
        first_col = [0.0] * (n + 1)
        for i in range(1, n + 1):
            first_col[i] = first_col[i - 1] + mask_weights[i - 1]
        token_weight_cache: dict[str, float] = {}
        nodes = 0
        cells = 0

        def next_column(prev_col: list[float], token: str) -> list[float]:
            tw = token_weight_cache.get(token)
            if tw is None:
                tw = weights_of(token)
                token_weight_cache[token] = tw
            col = [prev_col[0] + tw]
            append = col.append
            for i in range(1, n + 1):
                if masked[i - 1] == token:
                    append(prev_col[i - 1])
                else:
                    insert_cost = prev_col[i] + tw
                    delete_cost = col[i - 1] + mask_weights[i - 1]
                    append(
                        insert_cost if insert_cost < delete_cost else delete_cost
                    )
            return col

        def expand(node: TrieNode, col: list[float]):
            nonlocal nodes, cells
            out = []
            for token, child in node.children.items():
                child_col = next_column(col, token)
                nodes += 1
                cells += n + 1
                out.append((child, child_col))
            if self.use_dap:
                out = self._dap_filter(out)
            return out

        stack = expand(root, first_col)
        while stack:
            node, col = stack.pop()
            if node.terminal and node.sentence is not None:
                top.offer(col[n], node.sentence)
            if min(col) > top.threshold():
                continue
            stack.extend(expand(node, col))
        stats.nodes_visited += nodes
        stats.dp_cells += cells

    def _dap_filter(
        self, expanded: list[tuple[TrieNode, list[float]]]
    ) -> list[tuple[TrieNode, list[float]]]:
        """Keep only the best branch among prime-superset siblings."""
        prime = [
            (child, col)
            for child, col in expanded
            if child.token in PRIME_SUPERSET
        ]
        if len(prime) <= 1:
            return expanded
        best = min(prime, key=lambda pair: pair[1][-1])
        others = [
            (child, col)
            for child, col in expanded
            if child.token not in PRIME_SUPERSET
        ]
        return others + [best]

