"""Error-correcting Earley parsing — the paper's abandoned alternative.

Section 3.2: "Early on, we also tried a probabilistic CFG and
probabilistic parsing but it turned out to be impractical because
configuring all the probabilities correctly is tricky and parsing was
slower."  This module implements that alternative faithfully so the
ablation can measure it: an Earley parser over the SpeakQL grammar
extended with weighted error operations (Aho-Peterson style):

- **match**   — the expected terminal equals the input token (cost 0);
- **substitute** — expected terminal != input token (delete + insert:
  ``W(input) + W(terminal)``, the LCS-consistent substitution cost);
- **insert**  — the parse hypothesizes a terminal with no input token
  (cost ``W(terminal)``);
- **delete**  — an input token is skipped entirely (cost ``W(input)``).

``EarleyCorrector.correct`` returns the minimum-cost grammatical
structure for a masked transcription, i.e. exactly what the trie search
computes — found by parsing instead of index search.  On the same
grammar the two agree on cost; the parser is the slower path, which is
the paper's reported reason for choosing the index.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.grammar.cfg import Grammar
from repro.grammar.speakql_grammar import build_speakql_grammar
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights

#: Item key: (rule index, dot position, origin chart).
_Item = tuple[int, int, int]


@dataclass
class _BackPointer:
    """How an item's best cost was reached (for structure recovery)."""

    kind: str  # predict | match | substitute | insert | delete | complete
    prev: tuple[int, _Item] | None = None  # (chart index, item)
    child: tuple[int, _Item] | None = None  # completed child, for complete
    emitted: str | None = None  # terminal emitted by match/substitute/insert


@dataclass
class EarleyCorrector:
    """Minimum-cost error-correcting parser for the SpeakQL grammar."""

    grammar: Grammar = field(default_factory=build_speakql_grammar)
    weights: TokenWeights = DEFAULT_WEIGHTS
    #: Safety valve: abandon inputs whose best cost exceeds this (the
    #: corrected structure would be useless anyway).
    max_cost: float = 40.0

    def __post_init__(self) -> None:
        self._rules = list(self.grammar.productions)
        self._rules_by_lhs: dict = {}
        for idx, rule in enumerate(self._rules):
            self._rules_by_lhs.setdefault(rule.lhs, []).append(idx)

    # -- public API --------------------------------------------------------

    def correct(
        self, tokens: list[str] | tuple[str, ...]
    ) -> tuple[tuple[str, ...], float] | None:
        """Minimum-cost grammatical structure for ``tokens``.

        Returns (structure, cost), or None when no structure is reachable
        within ``max_cost``.
        """
        tokens = list(tokens)
        n = len(tokens)
        charts: list[dict[_Item, float]] = [dict() for _ in range(n + 1)]
        backs: list[dict[_Item, _BackPointer]] = [dict() for _ in range(n + 1)]

        start_items = [
            ((idx, 0, 0), 0.0) for idx in self._rules_by_lhs[self.grammar.start]
        ]
        for item, cost in start_items:
            charts[0][item] = cost
            backs[0][item] = _BackPointer("predict")

        for i in range(n + 1):
            self._close_chart(i, charts, backs, tokens)
            if i == n:
                break
            self._advance_chart(i, charts, backs, tokens)

        best: tuple[float, _Item] | None = None
        for item, cost in charts[n].items():
            rule_idx, dot, origin = item
            rule = self._rules[rule_idx]
            if (
                origin == 0
                and dot == len(rule.rhs)
                and rule.lhs == self.grammar.start
            ):
                if best is None or cost < best[0]:
                    best = (cost, item)
        if best is None:
            return None
        structure = tuple(self._reconstruct(n, best[1], charts, backs))
        return structure, best[0]

    def parses(self, tokens: list[str] | tuple[str, ...]) -> bool:
        """True when ``tokens`` parses with zero corrections."""
        result = self.correct(tokens)
        return result is not None and result[1] == 0.0

    # -- chart construction ----------------------------------------------------

    def _close_chart(self, i, charts, backs, tokens) -> None:
        """Fixpoint over in-chart edges: predict, insert, complete.

        Processed as a Dijkstra relaxation since completions compose
        costs and inserts add weight without consuming input.
        """
        chart = charts[i]
        back = backs[i]
        heap: list[tuple[float, _Item]] = [
            (cost, item) for item, cost in chart.items()
        ]
        heapq.heapify(heap)

        def relax(item: _Item, cost: float, pointer: _BackPointer) -> None:
            if cost > self.max_cost:
                return
            old = chart.get(item)
            if old is None or cost < old:
                chart[item] = cost
                back[item] = pointer
                heapq.heappush(heap, (cost, item))

        while heap:
            cost, item = heapq.heappop(heap)
            if cost > chart.get(item, _INF):
                continue
            rule_idx, dot, origin = item
            rule = self._rules[rule_idx]
            if dot < len(rule.rhs):
                symbol = rule.rhs[dot]
                if symbol.terminal:
                    # Insert: hypothesize the terminal without input.
                    relax(
                        (rule_idx, dot + 1, origin),
                        cost + self.weights.of(symbol.name),
                        _BackPointer(
                            "insert", prev=(i, item), emitted=symbol.name
                        ),
                    )
                else:
                    # Predict: a child item's cost covers only its own
                    # span (the parent's prefix cost is added back at
                    # completion), so it starts at zero.
                    for child_idx in self._rules_by_lhs.get(symbol, ()):
                        relax(
                            (child_idx, 0, i),
                            0.0,
                            _BackPointer("predict"),
                        )
            else:
                # Complete: finish ``rule`` spanning origin..i.
                for parent, parent_cost in list(charts[origin].items()):
                    p_rule_idx, p_dot, p_origin = parent
                    p_rule = self._rules[p_rule_idx]
                    if p_dot >= len(p_rule.rhs):
                        continue
                    if p_rule.rhs[p_dot] != rule.lhs:
                        continue
                    relax(
                        (p_rule_idx, p_dot + 1, p_origin),
                        parent_cost + cost,
                        _BackPointer(
                            "complete",
                            prev=(origin, parent),
                            child=(i, item),
                        ),
                    )

    def _advance_chart(self, i, charts, backs, tokens) -> None:
        """Input-consuming edges into chart i+1: match/substitute/delete."""
        token = tokens[i]
        token_weight = self.weights.of(token)
        next_chart = charts[i + 1]
        next_back = backs[i + 1]

        def relax(item: _Item, cost: float, pointer: _BackPointer) -> None:
            if cost > self.max_cost:
                return
            old = next_chart.get(item)
            if old is None or cost < old:
                next_chart[item] = cost
                next_back[item] = pointer

        for item, cost in charts[i].items():
            rule_idx, dot, origin = item
            rule = self._rules[rule_idx]
            # Delete the input token, keeping the item.
            relax(
                item,
                cost + token_weight,
                _BackPointer("delete", prev=(i, item)),
            )
            if dot < len(rule.rhs) and rule.rhs[dot].terminal:
                expected = rule.rhs[dot].name
                advanced = (rule_idx, dot + 1, origin)
                if expected == token:
                    relax(
                        advanced,
                        cost,
                        _BackPointer("match", prev=(i, item), emitted=expected),
                    )
                else:
                    relax(
                        advanced,
                        cost + token_weight + self.weights.of(expected),
                        _BackPointer(
                            "substitute", prev=(i, item), emitted=expected
                        ),
                    )

    # -- reconstruction ----------------------------------------------------------

    def _reconstruct(self, chart_idx, item, charts, backs) -> list[str]:
        """Emit the corrected terminal string along the best parse."""
        out: list[str] = []
        stack: list[tuple[int, _Item]] = [(chart_idx, item)]
        while stack:
            idx, current = stack.pop()
            pointer = backs[idx][current]
            if pointer.kind == "predict":
                continue
            if pointer.kind == "complete":
                # Output is assembled in reverse: process the completed
                # child first so the parent's prefix precedes it after
                # the final reversal.
                assert pointer.prev is not None and pointer.child is not None
                stack.append(pointer.prev)
                stack.append(pointer.child)
                continue
            assert pointer.prev is not None
            if pointer.kind in ("match", "substitute", "insert"):
                out.append(pointer.emitted or "")
                stack.append(pointer.prev)
            elif pointer.kind == "delete":
                stack.append(pointer.prev)
        out.reverse()
        return out


_INF = float("inf")
