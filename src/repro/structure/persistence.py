"""Structure-index persistence.

Building the structure index is the paper's *offline* step (Section
3.2/3.3: generate ~1.6M structures, pack them into 50 tries).  This
module caches the *compiled* index on disk so interactive sessions skip
both regeneration and trie construction: the file stores the intern
table and each flat trie's first-child/next-sibling/token-id/sentence-id
arrays (see :mod:`repro.structure.compiled`), and a load reconstructs a
ready-to-search :class:`CompiledStructureIndex` directly from them —
no token sequence is ever re-inserted into a pointer-heavy trie.  The
dict-of-dicts tries materialize lazily only if the reference search
kernel (or a direct trie walk) asks for them.

The file format is a compact text file with a short header recording
the generator parameters for cache validation; format v1 (one structure
per line) is no longer readable and simply triggers a rebuild.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ReproError
from repro.grammar.generator import StructureGenerator
from repro.structure.compiled import CompiledStructureIndex
from repro.structure.indexer import StructureIndex

_MAGIC = "speakql-structures"
FORMAT_VERSION = 2


class PersistenceError(ReproError):
    """Raised for unreadable or mismatched index files."""


def save_structures(index: StructureIndex, path: str | Path, max_tokens: int) -> None:
    """Write the compiled form of ``index`` to ``path``."""
    lines = [f"{_MAGIC} v{FORMAT_VERSION} max_tokens={max_tokens}"]
    lines.extend(index.compiled().to_lines())
    Path(path).write_text("\n".join(lines) + "\n")


def load_structures(path: str | Path) -> tuple[StructureIndex, int]:
    """Read a structure file; returns (index, max_tokens).

    The returned index wraps the deserialized compiled arrays; its node
    tries are built lazily on first access.
    """
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines:
        raise PersistenceError("empty structure file")
    header = lines[0].split()
    if len(header) != 3 or header[0] != _MAGIC:
        raise PersistenceError(f"not a structure file: {lines[0]!r}")
    if header[1] != f"v{FORMAT_VERSION}":
        raise PersistenceError(f"unsupported version: {header[1]}")
    try:
        max_tokens = int(header[2].split("=", 1)[1])
    except (IndexError, ValueError) as error:
        raise PersistenceError(f"bad header: {lines[0]!r}") from error
    try:
        compiled = CompiledStructureIndex.from_lines(lines[1:])
    except ValueError as error:
        raise PersistenceError(f"corrupt structure file: {error}") from error
    return StructureIndex.from_compiled(compiled), max_tokens


def load_or_build(
    cache_path: str | Path, max_tokens: int
) -> StructureIndex:
    """Load the index from ``cache_path`` if valid, else build and cache.

    A cached file built with a different ``max_tokens`` — or in the old
    v1 structure-per-line format — is rebuilt.
    """
    path = Path(cache_path)
    if path.exists():
        try:
            index, cached_tokens = load_structures(path)
            if cached_tokens == max_tokens:
                return index
        except PersistenceError:
            pass  # fall through to rebuild
    index = StructureIndex.build(StructureGenerator(max_tokens=max_tokens))
    path.parent.mkdir(parents=True, exist_ok=True)
    save_structures(index, path, max_tokens)
    return index
