"""Structure-index persistence.

Building the structure index is the paper's *offline* step (Section
3.2/3.3: generate ~1.6M structures, pack them into 50 tries).  This
module caches the generated structures on disk so interactive sessions
skip regeneration; the trie is rebuilt on load (it is faster to rebuild
than to deserialize a pointer-heavy trie).

The file format is a compact text file: one structure per line,
space-separated tokens, with a short header recording the generator
parameters for cache validation.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ReproError
from repro.grammar.generator import StructureGenerator
from repro.structure.indexer import StructureIndex

_MAGIC = "speakql-structures"
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Raised for unreadable or mismatched index files."""


def save_structures(index: StructureIndex, path: str | Path, max_tokens: int) -> None:
    """Write every indexed structure to ``path``."""
    lines = [f"{_MAGIC} v{FORMAT_VERSION} max_tokens={max_tokens}"]
    for length in index.lengths:
        for sentence in index.tries[length].sentences():
            lines.append(" ".join(sentence))
    Path(path).write_text("\n".join(lines) + "\n")


def load_structures(path: str | Path) -> tuple[StructureIndex, int]:
    """Read a structure file; returns (index, max_tokens)."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines:
        raise PersistenceError("empty structure file")
    header = lines[0].split()
    if len(header) != 3 or header[0] != _MAGIC:
        raise PersistenceError(f"not a structure file: {lines[0]!r}")
    if header[1] != f"v{FORMAT_VERSION}":
        raise PersistenceError(f"unsupported version: {header[1]}")
    try:
        max_tokens = int(header[2].split("=", 1)[1])
    except (IndexError, ValueError) as error:
        raise PersistenceError(f"bad header: {lines[0]!r}") from error
    index = StructureIndex()
    for line in lines[1:]:
        tokens = tuple(line.split())
        if tokens:
            index.add(tokens)
    return index, max_tokens


def load_or_build(
    cache_path: str | Path, max_tokens: int
) -> StructureIndex:
    """Load the index from ``cache_path`` if valid, else build and cache.

    A cached file built with a different ``max_tokens`` is rebuilt.
    """
    path = Path(cache_path)
    if path.exists():
        try:
            index, cached_tokens = load_structures(path)
            if cached_tokens == max_tokens:
                return index
        except PersistenceError:
            pass  # fall through to rebuild
    index = StructureIndex.build(StructureGenerator(max_tokens=max_tokens))
    path.parent.mkdir(parents=True, exist_ok=True)
    save_structures(index, path, max_tokens)
    return index
