"""Compiled structure index: interned tokens over flat-array tries.

Building the :class:`~repro.structure.indexer.StructureIndex` is the
paper's offline step; this module adds a second offline step that
*lowers* the built index into an immutable, cache-friendly form the
search engine's hot loop can run on without touching a single dict or
string:

- a global **intern table** mapping every distinct trie token to a small
  integer id, with a precomputed per-id operation-weight vector (so the
  inner DP loop never calls ``classify_token`` or hashes a string);
- each per-length trie flattened into contiguous **first-child /
  next-sibling arrays** (``array('i')`` / ``array('d')``) carrying node
  token ids, per-node operation weights, and terminal sentence ids.

The compiled form is weight-specific (the per-id/per-node weight vectors
bake in one :class:`TokenWeights`); :meth:`CompiledStructureIndex.reweighted`
derives a variant for different weights while sharing every structural
array.  ``repro.structure.persistence`` serializes the flat arrays
directly, so a cached index loads without re-inserting token sequences
into pointer-heavy tries.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.grammar.vocabulary import PRIME_SUPERSET
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.trie import TokenTrie

if TYPE_CHECKING:
    from repro.structure.indexer import StructureIndex

#: Sentinel for "no child" / "no sibling" / "not terminal".
NO_NODE = -1


def weights_key(weights: TokenWeights) -> tuple[float, float, float]:
    """Hashable identity of a weight setting (used as a cache key)."""
    return (weights.keyword, weights.splchar, weights.literal)


@dataclass(frozen=True)
class TrieLevel:
    """One breadth-first level of a compiled trie, as numpy arrays.

    Nodes appear parent-major (children of the previous level's first
    node first), siblings in first-child/next-sibling order — so the
    level's left-to-right order equals the depth-first left-to-right
    order restricted to this depth.  The level-synchronous search kernel
    consumes these directly.
    """

    #: Node indexes at this depth, parent-major.
    order: np.ndarray
    #: For each node, the row of its parent within the previous level.
    parent_pos: np.ndarray
    #: Interned token id per node.
    token_id: np.ndarray
    #: Sentence id per node (−1 for non-terminals).
    sentence_id: np.ndarray
    #: Whether any node at this depth is a terminal.
    has_terminals: bool
    #: Children of this level's node j occupy rows
    #: ``child_start[j] : child_start[j] + child_count[j]`` of the next
    #: level (the layout is parent-major, so sibling runs are contiguous).
    child_start: np.ndarray
    child_count: np.ndarray


@dataclass(frozen=True)
class CompiledTrie:
    """One length's trie as contiguous first-child/next-sibling arrays.

    Node 0 is the root (empty prefix; ``token_id`` −1, weight 0).  For a
    node ``i``, ``first_child[i]`` / ``next_sibling[i]`` are node indexes
    (or :data:`NO_NODE`), ``token_id[i]`` indexes the owning index's
    intern table, ``node_weight[i]`` is the token's operation weight
    under the compiled :class:`TokenWeights`, and ``sentence_id[i]`` is
    the terminal structure's id (or :data:`NO_NODE`).
    """

    length: int
    first_child: array
    next_sibling: array
    token_id: array
    node_weight: array
    sentence_id: array

    @property
    def node_count(self) -> int:
        return len(self.first_child)

    def levels(self) -> tuple[TrieLevel, ...]:
        """Breadth-first level plan, built lazily and cached.

        Purely structural (no weights), so a rebuild after
        :meth:`reweighted` yields identical arrays.  The lazy build is
        idempotent, which keeps concurrent first calls benign.
        """
        plan = getattr(self, "_levels", None)
        if plan is None:
            plan = _build_levels(self)
            object.__setattr__(self, "_levels", plan)
        return plan

    def reweighted(self, token_weight: array) -> "CompiledTrie":
        """The same trie with node weights from ``token_weight`` (per id)."""
        tid = self.token_id
        node_weight = array(
            "d", (token_weight[t] if t >= 0 else 0.0 for t in tid)
        )
        return CompiledTrie(
            length=self.length,
            first_child=self.first_child,
            next_sibling=self.next_sibling,
            token_id=tid,
            node_weight=node_weight,
            sentence_id=self.sentence_id,
        )


@dataclass(frozen=True)
class CompiledStructureIndex:
    """An immutable lowered :class:`StructureIndex`.

    Shared read-only across worker threads: nothing in it mutates after
    :meth:`compile` returns.
    """

    #: Intern table: id -> token, token -> id.
    tokens: tuple[str, ...]
    token_ids: dict[str, int]
    #: Operation weight per token id, under ``weights``.
    token_weight: array
    #: True per token id iff the token is in the DAP prime superset.
    prime: tuple[bool, ...]
    weights: TokenWeights
    #: Flat tries keyed by structure length.
    tries: dict[int, CompiledTrie]
    #: Terminal structures by sentence id (DFS discovery order).
    sentences: tuple[tuple[str, ...], ...]

    def __len__(self) -> int:
        return len(self.sentences)

    @property
    def lengths(self) -> list[int]:
        return sorted(self.tries)

    @property
    def weights_key(self) -> tuple[float, float, float]:
        return weights_key(self.weights)

    def node_count(self) -> int:
        return sum(trie.node_count for trie in self.tries.values())

    def largest_trie_nodes(self) -> int:
        if not self.tries:
            return 0
        return max(trie.node_count for trie in self.tries.values())

    def metrics(self) -> dict[str, int]:
        """Size gauges for the observability layer, by canonical metric
        name (see :mod:`repro.observability.names`)."""
        return {
            "speakql_index_structures": len(self.sentences),
            "speakql_index_tries": len(self.tries),
            "speakql_index_trie_nodes": self.node_count(),
            "speakql_index_tokens": len(self.tokens),
        }

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(
        cls,
        index: "StructureIndex",
        weights: TokenWeights = DEFAULT_WEIGHTS,
    ) -> "CompiledStructureIndex":
        """Lower a built index into the flat-array form.

        Tokens are interned in first-encounter order (lengths ascending,
        preorder within each trie), which makes compilation — and
        everything derived from it — deterministic.
        """
        tokens: list[str] = []
        token_ids: dict[str, int] = {}
        sentences: list[tuple[str, ...]] = []
        tries: dict[int, CompiledTrie] = {}
        for length in sorted(index.tries):
            tries[length] = _compile_trie(
                length, index.tries[length], tokens, token_ids, sentences
            )
        token_weight = array("d", (weights.of(t) for t in tokens))
        prime = tuple(t in PRIME_SUPERSET for t in tokens)
        compiled = cls(
            tokens=tuple(tokens),
            token_ids=token_ids,
            token_weight=token_weight,
            prime=prime,
            weights=weights,
            tries=tries,
            sentences=tuple(sentences),
        )
        return _with_node_weights(compiled)

    def reweighted(self, weights: TokenWeights) -> "CompiledStructureIndex":
        """A compiled variant for different weights.

        Structural arrays (children, siblings, token ids, sentence ids)
        are shared; only the weight vectors are recomputed.
        """
        if weights_key(weights) == self.weights_key:
            return self
        token_weight = array("d", (weights.of(t) for t in self.tokens))
        tries = {
            length: trie.reweighted(token_weight)
            for length, trie in self.tries.items()
        }
        return CompiledStructureIndex(
            tokens=self.tokens,
            token_ids=self.token_ids,
            token_weight=token_weight,
            prime=self.prime,
            weights=weights,
            tries=tries,
            sentences=self.sentences,
        )

    # -- serialization ------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialize the structural arrays as text lines.

        Weight vectors are derived data and are not persisted; a load
        recompiles them for the weights in effect.
        """
        lines = [f"tokens {len(self.tokens)}", " ".join(self.tokens)]
        lines.append(f"structures {len(self.sentences)}")
        for length in sorted(self.tries):
            trie = self.tries[length]
            lines.append(f"trie {length} {trie.node_count}")
            lines.append(" ".join(map(str, trie.first_child)))
            lines.append(" ".join(map(str, trie.next_sibling)))
            lines.append(" ".join(map(str, trie.token_id)))
            lines.append(" ".join(map(str, trie.sentence_id)))
        return lines

    @classmethod
    def from_lines(
        cls,
        lines: list[str],
        weights: TokenWeights = DEFAULT_WEIGHTS,
    ) -> "CompiledStructureIndex":
        """Rebuild a compiled index from :meth:`to_lines` output.

        Raises ``ValueError`` on any structural inconsistency.
        """
        pos = 0

        def take() -> str:
            nonlocal pos
            if pos >= len(lines):
                raise ValueError("truncated compiled index")
            line = lines[pos]
            pos += 1
            return line

        head = take().split()
        if len(head) != 2 or head[0] != "tokens":
            raise ValueError(f"expected token table, got {head!r}")
        n_tokens = int(head[1])
        tokens = tuple(take().split())
        if len(tokens) != n_tokens:
            raise ValueError("token table length mismatch")
        head = take().split()
        if len(head) != 2 or head[0] != "structures":
            raise ValueError(f"expected structure count, got {head!r}")
        n_sentences = int(head[1])
        token_ids = {token: i for i, token in enumerate(tokens)}
        sentences: list[tuple[str, ...] | None] = [None] * n_sentences
        tries: dict[int, CompiledTrie] = {}
        while pos < len(lines):
            head = take().split()
            if len(head) != 3 or head[0] != "trie":
                raise ValueError(f"expected trie header, got {head!r}")
            length, node_count = int(head[1]), int(head[2])
            first_child = array("i", map(int, take().split()))
            next_sibling = array("i", map(int, take().split()))
            token_id = array("i", map(int, take().split()))
            sentence_id = array("i", map(int, take().split()))
            arrays = (first_child, next_sibling, token_id, sentence_id)
            if any(len(a) != node_count for a in arrays):
                raise ValueError(f"trie {length}: array length mismatch")
            tries[length] = CompiledTrie(
                length=length,
                first_child=first_child,
                next_sibling=next_sibling,
                token_id=token_id,
                node_weight=array("d"),
                sentence_id=sentence_id,
            )
            _collect_sentences(tries[length], tokens, sentences)
        if any(s is None for s in sentences):
            raise ValueError("missing terminal structures")
        token_weight = array("d", (weights.of(t) for t in tokens))
        prime = tuple(t in PRIME_SUPERSET for t in tokens)
        compiled = cls(
            tokens=tokens,
            token_ids=token_ids,
            token_weight=token_weight,
            prime=prime,
            weights=weights,
            tries=tries,
            sentences=tuple(sentences),  # type: ignore[arg-type]
        )
        return _with_node_weights(compiled)


def _compile_trie(
    length: int,
    trie: TokenTrie,
    tokens: list[str],
    token_ids: dict[str, int],
    sentences: list[tuple[str, ...]],
) -> CompiledTrie:
    """Flatten one dict-of-dicts trie, interning tokens as encountered."""
    first_child = [NO_NODE]
    next_sibling = [NO_NODE]
    token_id = [NO_NODE]
    sentence_id = [NO_NODE]

    def emit(node) -> int:
        my = len(first_child)
        tid = token_ids.get(node.token)
        if tid is None:
            tid = len(tokens)
            token_ids[node.token] = tid
            tokens.append(node.token)
        sid = NO_NODE
        if node.terminal and node.sentence is not None:
            sid = len(sentences)
            sentences.append(node.sentence)
        first_child.append(NO_NODE)
        next_sibling.append(NO_NODE)
        token_id.append(tid)
        sentence_id.append(sid)
        prev = NO_NODE
        for child in node.children.values():
            cid = emit(child)
            if prev == NO_NODE:
                first_child[my] = cid
            else:
                next_sibling[prev] = cid
            prev = cid
        return my

    prev = NO_NODE
    for child in trie.root.children.values():
        cid = emit(child)
        if prev == NO_NODE:
            first_child[0] = cid
        else:
            next_sibling[prev] = cid
        prev = cid
    return CompiledTrie(
        length=length,
        first_child=array("i", first_child),
        next_sibling=array("i", next_sibling),
        token_id=array("i", token_id),
        node_weight=array("d"),
        sentence_id=array("i", sentence_id),
    )


def _with_node_weights(compiled: CompiledStructureIndex) -> CompiledStructureIndex:
    """Fill every trie's per-node weight vector from the per-id vector."""
    tries = {
        length: trie.reweighted(compiled.token_weight)
        for length, trie in compiled.tries.items()
    }
    return CompiledStructureIndex(
        tokens=compiled.tokens,
        token_ids=compiled.token_ids,
        token_weight=compiled.token_weight,
        prime=compiled.prime,
        weights=compiled.weights,
        tries=tries,
        sentences=compiled.sentences,
    )


def _build_levels(trie: CompiledTrie) -> tuple[TrieLevel, ...]:
    """Lay the trie out breadth-first for the level-synchronous kernel."""
    fc = trie.first_child
    ns = trie.next_sibling
    tid = trie.token_id
    sid = trie.sentence_id
    raw: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    frontier = [0]
    while True:
        order: list[int] = []
        parent_pos: list[int] = []
        for p, node in enumerate(frontier):
            child = fc[node]
            while child != NO_NODE:
                order.append(child)
                parent_pos.append(p)
                child = ns[child]
        if not order:
            break
        raw.append(
            (
                np.array(order, dtype=np.intp),
                np.array(parent_pos, dtype=np.intp),
                np.array([tid[c] for c in order], dtype=np.intp),
                np.array([sid[c] for c in order], dtype=np.intp),
            )
        )
        frontier = order
    levels: list[TrieLevel] = []
    for d, (order_a, parent_a, tid_a, sid_a) in enumerate(raw):
        if d + 1 < len(raw):
            counts = np.bincount(raw[d + 1][1], minlength=order_a.size)
            counts = counts.astype(np.intp)
        else:
            counts = np.zeros(order_a.size, dtype=np.intp)
        starts = np.cumsum(counts) - counts
        levels.append(
            TrieLevel(
                order=order_a,
                parent_pos=parent_a,
                token_id=tid_a,
                sentence_id=sid_a,
                has_terminals=bool((sid_a >= 0).any()),
                child_start=starts,
                child_count=counts,
            )
        )
    return tuple(levels)


def _collect_sentences(
    trie: CompiledTrie,
    tokens: tuple[str, ...],
    sentences: list,
) -> None:
    """Reconstruct terminal structures by walking root-to-terminal paths."""
    fc, ns, tid, sid = (
        trie.first_child,
        trie.next_sibling,
        trie.token_id,
        trie.sentence_id,
    )

    def walk(node: int, path: list[str]) -> None:
        child = fc[node]
        while child != NO_NODE:
            path.append(tokens[tid[child]])
            s = sid[child]
            if s != NO_NODE:
                if s >= len(sentences):
                    raise ValueError(f"sentence id {s} out of range")
                sentences[s] = tuple(path)
            walk(child, path)
            path.pop()
            child = ns[child]

    walk(0, [])
