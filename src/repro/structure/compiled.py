"""Compiled structure index: interned tokens over flat-array tries.

Building the :class:`~repro.structure.indexer.StructureIndex` is the
paper's offline step; this module adds a second offline step that
*lowers* the built index into an immutable, cache-friendly form the
search engine's hot loop can run on without touching a single dict or
string:

- a global **intern table** mapping every distinct trie token to a small
  integer id, with a precomputed per-id operation-weight vector (so the
  inner DP loop never calls ``classify_token`` or hashes a string);
- each per-length trie flattened into contiguous **first-child /
  next-sibling arrays** (``array('i')`` / ``array('d')``) carrying node
  token ids, per-node operation weights, and terminal sentence ids.

The compiled form is weight-specific (the per-id/per-node weight vectors
bake in one :class:`TokenWeights`); :meth:`CompiledStructureIndex.reweighted`
derives a variant for different weights while sharing every structural
array.  ``repro.structure.persistence`` serializes the flat arrays
directly, so a cached index loads without re-inserting token sequences
into pointer-heavy tries.

For multi-process serving the flat arrays can additionally be placed in
one shared-memory segment: :meth:`CompiledStructureIndex.to_shared`
copies every trie array into a ``multiprocessing.shared_memory`` block
and returns a :class:`SharedCompiledIndex` owner whose picklable
:class:`SharedIndexHandle` lets worker processes re-materialize the
index with :func:`from_shared` as zero-copy ``memoryview`` casts over
the same physical pages — N workers map one copy.
:func:`partition_lengths` buckets the per-length tries into K balanced
shards (deterministic greedy LPT by node count) for the sharded
executor in :mod:`repro.core.shards`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.grammar.vocabulary import PRIME_SUPERSET
from repro.structure.edit_distance import DEFAULT_WEIGHTS, TokenWeights
from repro.structure.trie import TokenTrie

if TYPE_CHECKING:
    from repro.structure.indexer import StructureIndex

#: Sentinel for "no child" / "no sibling" / "not terminal".
NO_NODE = -1


def weights_key(weights: TokenWeights) -> tuple[float, float, float]:
    """Hashable identity of a weight setting (used as a cache key)."""
    return (weights.keyword, weights.splchar, weights.literal)


def span_state_key(
    masked: tuple[str, ...] | list[str], weights: TokenWeights
) -> tuple:
    """Identity of one span's cached kernel decode state.

    The compiled kernel's per-span DP/beam work is fully determined by
    the masked span tokens and the edit weights in force (the level
    plan and per-level weight tables are functions of the index +
    weights).  The serving layer's
    :class:`~repro.serving.sessions.SessionStore` keys cached span
    decodes by this tuple, so reweighting the index (see
    :meth:`CompiledStructureIndex.reweighted`) invalidates every cached
    span rather than silently replaying stale distances.
    """
    return (tuple(masked), weights_key(weights))


@dataclass(frozen=True)
class TrieLevel:
    """One breadth-first level of a compiled trie, as numpy arrays.

    Nodes appear parent-major (children of the previous level's first
    node first), siblings in first-child/next-sibling order — so the
    level's left-to-right order equals the depth-first left-to-right
    order restricted to this depth.  The level-synchronous search kernel
    consumes these directly.
    """

    #: Node indexes at this depth, parent-major.
    order: np.ndarray
    #: For each node, the row of its parent within the previous level.
    parent_pos: np.ndarray
    #: Interned token id per node.
    token_id: np.ndarray
    #: Sentence id per node (−1 for non-terminals).
    sentence_id: np.ndarray
    #: Whether any node at this depth is a terminal.
    has_terminals: bool
    #: Children of this level's node j occupy rows
    #: ``child_start[j] : child_start[j] + child_count[j]`` of the next
    #: level (the layout is parent-major, so sibling runs are contiguous).
    child_start: np.ndarray
    child_count: np.ndarray


@dataclass(frozen=True)
class CompiledTrie:
    """One length's trie as contiguous first-child/next-sibling arrays.

    Node 0 is the root (empty prefix; ``token_id`` −1, weight 0).  For a
    node ``i``, ``first_child[i]`` / ``next_sibling[i]`` are node indexes
    (or :data:`NO_NODE`), ``token_id[i]`` indexes the owning index's
    intern table, ``node_weight[i]`` is the token's operation weight
    under the compiled :class:`TokenWeights`, and ``sentence_id[i]`` is
    the terminal structure's id (or :data:`NO_NODE`).
    """

    length: int
    first_child: array
    next_sibling: array
    token_id: array
    node_weight: array
    sentence_id: array

    @property
    def node_count(self) -> int:
        return len(self.first_child)

    def levels(self) -> tuple[TrieLevel, ...]:
        """Breadth-first level plan, built lazily and cached.

        Purely structural (no weights), so a rebuild after
        :meth:`reweighted` yields identical arrays.  The lazy build is
        idempotent, which keeps concurrent first calls benign.
        """
        plan = getattr(self, "_levels", None)
        if plan is None:
            plan = _build_levels(self)
            object.__setattr__(self, "_levels", plan)
        return plan

    def reweighted(
        self, token_weight: array, changed: "set[int] | None" = None
    ) -> "CompiledTrie":
        """The same trie with node weights from ``token_weight`` (per id).

        ``changed`` — when given — is the set of token ids whose weight
        actually differs from this trie's current weights.  A trie whose
        tokens are all outside that set is returned as-is (every buffer
        reused), so deriving a near-identical weight setting does not
        duplicate the index.  The cached level plan is purely structural
        and is carried over to the reweighted copy either way.
        """
        tid = self.token_id
        if (
            changed is not None
            and len(self.node_weight) == self.node_count
            and not any(t >= 0 and t in changed for t in tid)
        ):
            return self
        node_weight = array(
            "d", (token_weight[t] if t >= 0 else 0.0 for t in tid)
        )
        trie = CompiledTrie(
            length=self.length,
            first_child=self.first_child,
            next_sibling=self.next_sibling,
            token_id=tid,
            node_weight=node_weight,
            sentence_id=self.sentence_id,
        )
        plan = getattr(self, "_levels", None)
        if plan is not None:
            object.__setattr__(trie, "_levels", plan)
        return trie


@dataclass(frozen=True)
class CompiledStructureIndex:
    """An immutable lowered :class:`StructureIndex`.

    Shared read-only across worker threads: nothing in it mutates after
    :meth:`compile` returns.
    """

    #: Intern table: id -> token, token -> id.
    tokens: tuple[str, ...]
    token_ids: dict[str, int]
    #: Operation weight per token id, under ``weights``.
    token_weight: array
    #: True per token id iff the token is in the DAP prime superset.
    prime: tuple[bool, ...]
    weights: TokenWeights
    #: Flat tries keyed by structure length.
    tries: dict[int, CompiledTrie]
    #: Terminal structures by sentence id (DFS discovery order).
    sentences: tuple[tuple[str, ...], ...]

    def __len__(self) -> int:
        return len(self.sentences)

    @property
    def lengths(self) -> list[int]:
        return sorted(self.tries)

    @property
    def weights_key(self) -> tuple[float, float, float]:
        return weights_key(self.weights)

    def node_count(self) -> int:
        return sum(trie.node_count for trie in self.tries.values())

    def largest_trie_nodes(self) -> int:
        if not self.tries:
            return 0
        return max(trie.node_count for trie in self.tries.values())

    def metrics(self) -> dict[str, int]:
        """Size gauges for the observability layer, by canonical metric
        name (see :mod:`repro.observability.names`)."""
        return {
            "speakql_index_structures": len(self.sentences),
            "speakql_index_tries": len(self.tries),
            "speakql_index_trie_nodes": self.node_count(),
            "speakql_index_tokens": len(self.tokens),
        }

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(
        cls,
        index: "StructureIndex",
        weights: TokenWeights = DEFAULT_WEIGHTS,
    ) -> "CompiledStructureIndex":
        """Lower a built index into the flat-array form.

        Tokens are interned in first-encounter order (lengths ascending,
        preorder within each trie), which makes compilation — and
        everything derived from it — deterministic.
        """
        tokens: list[str] = []
        token_ids: dict[str, int] = {}
        sentences: list[tuple[str, ...]] = []
        tries: dict[int, CompiledTrie] = {}
        for length in sorted(index.tries):
            tries[length] = _compile_trie(
                length, index.tries[length], tokens, token_ids, sentences
            )
        token_weight = array("d", (weights.of(t) for t in tokens))
        prime = tuple(t in PRIME_SUPERSET for t in tokens)
        compiled = cls(
            tokens=tuple(tokens),
            token_ids=token_ids,
            token_weight=token_weight,
            prime=prime,
            weights=weights,
            tries=tries,
            sentences=tuple(sentences),
        )
        return _with_node_weights(compiled)

    def reweighted(self, weights: TokenWeights) -> "CompiledStructureIndex":
        """A compiled variant for different weights.

        Structural arrays (children, siblings, token ids, sentence ids)
        are always shared.  Weight buffers are only recomputed where the
        new weights actually change a value: when the per-id vector is
        unchanged every trie is reused outright, and otherwise only the
        tries touching a changed token id are rebuilt (the rest keep
        their node-weight buffers too).
        """
        if weights_key(weights) == self.weights_key:
            return self
        token_weight = array("d", (weights.of(t) for t in self.tokens))
        if token_weight == self.token_weight:
            # Different setting, same effective per-token weights (e.g.
            # a class absent from the intern table changed): every
            # buffer — including node weights — is reusable.
            tries = self.tries
        else:
            old = self.token_weight
            changed = {
                i for i, w in enumerate(token_weight) if w != old[i]
            }
            tries = {
                length: trie.reweighted(token_weight, changed=changed)
                for length, trie in self.tries.items()
            }
        return CompiledStructureIndex(
            tokens=self.tokens,
            token_ids=self.token_ids,
            token_weight=token_weight,
            prime=self.prime,
            weights=weights,
            tries=tries,
            sentences=self.sentences,
        )

    def subset(self, lengths: Iterable[int]) -> "CompiledStructureIndex":
        """A zero-copy view restricted to the tries for ``lengths``.

        Every kept array object (including cached level plans) is shared
        with this index; sentences whose trie is excluded are replaced
        by an empty placeholder tuple, keeping sentence ids stable so a
        shard's results merge against the full index unambiguously.
        """
        wanted = set(lengths)
        missing = wanted - set(self.tries)
        if missing:
            raise ValueError(f"unknown trie lengths: {sorted(missing)}")
        tries = {length: self.tries[length] for length in sorted(wanted)}
        kept_ids = {
            sid
            for trie in tries.values()
            for sid in trie.sentence_id
            if sid != NO_NODE
        }
        sentences = tuple(
            sentence if sid in kept_ids else ()
            for sid, sentence in enumerate(self.sentences)
        )
        return CompiledStructureIndex(
            tokens=self.tokens,
            token_ids=self.token_ids,
            token_weight=self.token_weight,
            prime=self.prime,
            weights=self.weights,
            tries=tries,
            sentences=sentences,
        )

    def to_shared(self) -> "SharedCompiledIndex":
        """Copy the trie arrays into one shared-memory segment.

        Returns the owning :class:`SharedCompiledIndex`; its picklable
        ``handle`` re-materializes the index in any process via
        :func:`from_shared` without copying the arrays again.  The
        caller (the coordinator) must keep the owner alive for as long
        as any worker maps it, then :meth:`SharedCompiledIndex.close`
        it.
        """
        return SharedCompiledIndex.create(self)

    # -- serialization ------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialize the structural arrays as text lines.

        Weight vectors are derived data and are not persisted; a load
        recompiles them for the weights in effect.
        """
        lines = [f"tokens {len(self.tokens)}", " ".join(self.tokens)]
        lines.append(f"structures {len(self.sentences)}")
        for length in sorted(self.tries):
            trie = self.tries[length]
            lines.append(f"trie {length} {trie.node_count}")
            lines.append(" ".join(map(str, trie.first_child)))
            lines.append(" ".join(map(str, trie.next_sibling)))
            lines.append(" ".join(map(str, trie.token_id)))
            lines.append(" ".join(map(str, trie.sentence_id)))
        return lines

    @classmethod
    def from_lines(
        cls,
        lines: list[str],
        weights: TokenWeights = DEFAULT_WEIGHTS,
    ) -> "CompiledStructureIndex":
        """Rebuild a compiled index from :meth:`to_lines` output.

        Raises ``ValueError`` on any structural inconsistency.
        """
        pos = 0

        def take() -> str:
            nonlocal pos
            if pos >= len(lines):
                raise ValueError("truncated compiled index")
            line = lines[pos]
            pos += 1
            return line

        head = take().split()
        if len(head) != 2 or head[0] != "tokens":
            raise ValueError(f"expected token table, got {head!r}")
        n_tokens = int(head[1])
        tokens = tuple(take().split())
        if len(tokens) != n_tokens:
            raise ValueError("token table length mismatch")
        head = take().split()
        if len(head) != 2 or head[0] != "structures":
            raise ValueError(f"expected structure count, got {head!r}")
        n_sentences = int(head[1])
        token_ids = {token: i for i, token in enumerate(tokens)}
        sentences: list[tuple[str, ...] | None] = [None] * n_sentences
        tries: dict[int, CompiledTrie] = {}
        while pos < len(lines):
            head = take().split()
            if len(head) != 3 or head[0] != "trie":
                raise ValueError(f"expected trie header, got {head!r}")
            length, node_count = int(head[1]), int(head[2])
            first_child = array("i", map(int, take().split()))
            next_sibling = array("i", map(int, take().split()))
            token_id = array("i", map(int, take().split()))
            sentence_id = array("i", map(int, take().split()))
            arrays = (first_child, next_sibling, token_id, sentence_id)
            if any(len(a) != node_count for a in arrays):
                raise ValueError(f"trie {length}: array length mismatch")
            tries[length] = CompiledTrie(
                length=length,
                first_child=first_child,
                next_sibling=next_sibling,
                token_id=token_id,
                node_weight=array("d"),
                sentence_id=sentence_id,
            )
            _collect_sentences(tries[length], tokens, sentences)
        if any(s is None for s in sentences):
            raise ValueError("missing terminal structures")
        token_weight = array("d", (weights.of(t) for t in tokens))
        prime = tuple(t in PRIME_SUPERSET for t in tokens)
        compiled = cls(
            tokens=tokens,
            token_ids=token_ids,
            token_weight=token_weight,
            prime=prime,
            weights=weights,
            tries=tries,
            sentences=tuple(sentences),  # type: ignore[arg-type]
        )
        return _with_node_weights(compiled)


def _compile_trie(
    length: int,
    trie: TokenTrie,
    tokens: list[str],
    token_ids: dict[str, int],
    sentences: list[tuple[str, ...]],
) -> CompiledTrie:
    """Flatten one dict-of-dicts trie, interning tokens as encountered."""
    first_child = [NO_NODE]
    next_sibling = [NO_NODE]
    token_id = [NO_NODE]
    sentence_id = [NO_NODE]

    def emit(node) -> int:
        my = len(first_child)
        tid = token_ids.get(node.token)
        if tid is None:
            tid = len(tokens)
            token_ids[node.token] = tid
            tokens.append(node.token)
        sid = NO_NODE
        if node.terminal and node.sentence is not None:
            sid = len(sentences)
            sentences.append(node.sentence)
        first_child.append(NO_NODE)
        next_sibling.append(NO_NODE)
        token_id.append(tid)
        sentence_id.append(sid)
        prev = NO_NODE
        for child in node.children.values():
            cid = emit(child)
            if prev == NO_NODE:
                first_child[my] = cid
            else:
                next_sibling[prev] = cid
            prev = cid
        return my

    prev = NO_NODE
    for child in trie.root.children.values():
        cid = emit(child)
        if prev == NO_NODE:
            first_child[0] = cid
        else:
            next_sibling[prev] = cid
        prev = cid
    return CompiledTrie(
        length=length,
        first_child=array("i", first_child),
        next_sibling=array("i", next_sibling),
        token_id=array("i", token_id),
        node_weight=array("d"),
        sentence_id=array("i", sentence_id),
    )


def _with_node_weights(compiled: CompiledStructureIndex) -> CompiledStructureIndex:
    """Fill every trie's per-node weight vector from the per-id vector."""
    tries = {
        length: trie.reweighted(compiled.token_weight)
        for length, trie in compiled.tries.items()
    }
    return CompiledStructureIndex(
        tokens=compiled.tokens,
        token_ids=compiled.token_ids,
        token_weight=compiled.token_weight,
        prime=compiled.prime,
        weights=compiled.weights,
        tries=tries,
        sentences=compiled.sentences,
    )


def _build_levels(trie: CompiledTrie) -> tuple[TrieLevel, ...]:
    """Lay the trie out breadth-first for the level-synchronous kernel."""
    fc = trie.first_child
    ns = trie.next_sibling
    tid = trie.token_id
    sid = trie.sentence_id
    raw: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    frontier = [0]
    while True:
        order: list[int] = []
        parent_pos: list[int] = []
        for p, node in enumerate(frontier):
            child = fc[node]
            while child != NO_NODE:
                order.append(child)
                parent_pos.append(p)
                child = ns[child]
        if not order:
            break
        raw.append(
            (
                np.array(order, dtype=np.intp),
                np.array(parent_pos, dtype=np.intp),
                np.array([tid[c] for c in order], dtype=np.intp),
                np.array([sid[c] for c in order], dtype=np.intp),
            )
        )
        frontier = order
    levels: list[TrieLevel] = []
    for d, (order_a, parent_a, tid_a, sid_a) in enumerate(raw):
        if d + 1 < len(raw):
            counts = np.bincount(raw[d + 1][1], minlength=order_a.size)
            counts = counts.astype(np.intp)
        else:
            counts = np.zeros(order_a.size, dtype=np.intp)
        starts = np.cumsum(counts) - counts
        levels.append(
            TrieLevel(
                order=order_a,
                parent_pos=parent_a,
                token_id=tid_a,
                sentence_id=sid_a,
                has_terminals=bool((sid_a >= 0).any()),
                child_start=starts,
                child_count=counts,
            )
        )
    return tuple(levels)


def _collect_sentences(
    trie: CompiledTrie,
    tokens: tuple[str, ...],
    sentences: list,
) -> None:
    """Reconstruct terminal structures by walking root-to-terminal paths."""
    fc, ns, tid, sid = (
        trie.first_child,
        trie.next_sibling,
        trie.token_id,
        trie.sentence_id,
    )

    def walk(node: int, path: list[str]) -> None:
        child = fc[node]
        while child != NO_NODE:
            path.append(tokens[tid[child]])
            s = sid[child]
            if s != NO_NODE:
                if s >= len(sentences):
                    raise ValueError(f"sentence id {s} out of range")
                sentences[s] = tuple(path)
            walk(child, path)
            path.pop()
            child = ns[child]

    walk(0, [])


# -- shared memory -----------------------------------------------------------

_INT_SIZE = array("i").itemsize
_DOUBLE_SIZE = array("d").itemsize


def _as_bytes(buffer) -> bytes:
    """Raw bytes of an ``array`` or ``memoryview``-backed trie array."""
    return buffer.tobytes()


@dataclass(frozen=True)
class SharedIndexHandle:
    """Picklable descriptor of a compiled index in shared memory.

    Carries everything a worker process needs to re-materialize the
    index (or a shard of it) over the segment named ``shm_name``:
    the intern table, the compiled weights, the sentence-id space size,
    and per-trie byte offsets into the segment.  The arrays themselves
    are *not* pickled — that is the point.
    """

    shm_name: str
    tokens: tuple[str, ...]
    weights: TokenWeights
    sentence_count: int
    #: Per trie: (length, node_count, node_weight / first_child /
    #: next_sibling / token_id / sentence_id byte offsets).
    tries: tuple[tuple[int, int, int, int, int, int, int], ...]

    @property
    def lengths(self) -> tuple[int, ...]:
        return tuple(spec[0] for spec in self.tries)


class SharedCompiledIndex:
    """Owner of one shared-memory segment holding a compiled index.

    Created by :meth:`CompiledStructureIndex.to_shared`; the creating
    process keeps this object alive while workers map the segment and
    calls :meth:`close` (idempotent) to release and unlink it.  Workers
    attach read-only views via :func:`from_shared` on ``handle`` and
    never unlink.
    """

    def __init__(self, shm, handle: SharedIndexHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False

    @property
    def name(self) -> str:
        return self.handle.shm_name

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def create(
        cls, compiled: CompiledStructureIndex
    ) -> "SharedCompiledIndex":
        """Copy ``compiled``'s trie arrays into a fresh segment.

        Layout: all float64 node-weight vectors first (8-aligned at
        offset 0), then every int32 structural array — so each region
        can be cast from the raw buffer without padding.
        """
        from multiprocessing import shared_memory

        specs: list[list[int]] = []
        offset = 0
        lengths = sorted(compiled.tries)
        for length in lengths:
            trie = compiled.tries[length]
            if len(trie.node_weight) != trie.node_count:
                raise ValueError(
                    f"trie {length}: node weights not compiled"
                )
            specs.append([length, trie.node_count, offset, 0, 0, 0, 0])
            offset += trie.node_count * _DOUBLE_SIZE
        for spec in specs:
            node_count = spec[1]
            for slot in range(3, 7):
                spec[slot] = offset
                offset += node_count * _INT_SIZE
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        buf = shm.buf
        for spec, length in zip(specs, lengths):
            trie = compiled.tries[length]
            _, node_count, w_off, fc_off, ns_off, tid_off, sid_off = spec
            buf[w_off:w_off + node_count * _DOUBLE_SIZE] = _as_bytes(
                trie.node_weight
            )
            for off, arr in (
                (fc_off, trie.first_child),
                (ns_off, trie.next_sibling),
                (tid_off, trie.token_id),
                (sid_off, trie.sentence_id),
            ):
                buf[off:off + node_count * _INT_SIZE] = _as_bytes(arr)
        handle = SharedIndexHandle(
            shm_name=shm.name,
            tokens=compiled.tokens,
            weights=compiled.weights,
            sentence_count=len(compiled.sentences),
            tries=tuple(tuple(spec) for spec in specs),
        )
        return cls(shm, handle)

    def close(self) -> None:
        """Release and unlink the segment (idempotent).

        Safe to call while attached workers still hold their own
        mappings — the segment disappears once the last mapping closes.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedCompiledIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _attach_segment(name: str):
    """Attach an existing segment without resource-tracker ownership.

    On Python >= 3.13 that is the ``track=False`` flag.  Earlier
    interpreters register every attach with the resource tracker, but
    worker processes inherit (or reconnect to) the *parent's* tracker,
    where the creator already registered the name — the duplicate
    register is a set no-op, and the owner's ``unlink()`` unregisters
    exactly once.  Explicitly unregistering here would make the owner's
    later unlink a double-remove (KeyError noise in the tracker), so the
    plain attach is left as-is.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
    # A view's cast memoryviews legitimately outlive this wrapper (the
    # OS unmaps at process exit); make its close — which ``__del__``
    # calls in arbitrary GC order — quiet about exported pointers.
    original_close = shm.close

    def _quiet_close() -> None:
        try:
            original_close()
        except BufferError:
            pass

    shm.close = _quiet_close
    return shm


def from_shared(
    handle: SharedIndexHandle,
    *,
    lengths: Iterable[int] | None = None,
    weights: TokenWeights | None = None,
) -> CompiledStructureIndex:
    """Re-materialize a (shard of a) compiled index from shared memory.

    Every trie array of the returned index is a zero-copy ``memoryview``
    cast over the shared segment — the arrays behave like the usual
    ``array('i')``/``array('d')`` buffers (indexing, iteration,
    ``np.frombuffer``) without duplicating a byte per process.

    ``lengths`` restricts the view to a shard's tries (sentence ids stay
    global; excluded structures become empty placeholders).  ``weights``
    other than the compiled ones fall back to per-process weight
    vectors (structure still shared).  The returned index keeps its
    segment mapping alive for its own lifetime.
    """
    shm = _attach_segment(handle.shm_name)
    buf = memoryview(shm.buf)
    wanted = set(lengths) if lengths is not None else None
    if wanted is not None:
        missing = wanted - set(handle.lengths)
        if missing:
            raise ValueError(f"unknown trie lengths: {sorted(missing)}")

    if weights is None:
        weights = handle.weights
    same_weights = weights_key(weights) == weights_key(handle.weights)
    tokens = handle.tokens
    token_weight = array("d", (weights.of(t) for t in tokens))

    tries: dict[int, CompiledTrie] = {}
    for spec in handle.tries:
        length, node_count, w_off, fc_off, ns_off, tid_off, sid_off = spec
        if wanted is not None and length not in wanted:
            continue
        trie = CompiledTrie(
            length=length,
            first_child=buf[
                fc_off:fc_off + node_count * _INT_SIZE
            ].cast("i"),
            next_sibling=buf[
                ns_off:ns_off + node_count * _INT_SIZE
            ].cast("i"),
            token_id=buf[
                tid_off:tid_off + node_count * _INT_SIZE
            ].cast("i"),
            node_weight=buf[
                w_off:w_off + node_count * _DOUBLE_SIZE
            ].cast("d"),
            sentence_id=buf[
                sid_off:sid_off + node_count * _INT_SIZE
            ].cast("i"),
        )
        if not same_weights:
            trie = trie.reweighted(token_weight)
        tries[length] = trie

    sentences: list[tuple[str, ...]] = [()] * handle.sentence_count
    for trie in tries.values():
        _collect_sentences(trie, tokens, sentences)
    compiled = CompiledStructureIndex(
        tokens=tokens,
        token_ids={token: i for i, token in enumerate(tokens)},
        token_weight=token_weight,
        prime=tuple(t in PRIME_SUPERSET for t in tokens),
        weights=weights,
        tries=tries,
        sentences=tuple(sentences),
    )
    # The memoryview casts borrow the mapping: pin it (and the cast
    # root) to the index so the segment outlives every derived view.
    object.__setattr__(compiled, "_shm", shm)
    object.__setattr__(compiled, "_shm_buf", buf)
    return compiled


def partition_lengths(
    compiled: CompiledStructureIndex, shards: int
) -> tuple[tuple[int, ...], ...]:
    """Bucket trie lengths into ``shards`` balanced groups by node count.

    Deterministic greedy LPT: lengths are assigned largest trie first
    (ties broken by ascending length) to the least-loaded shard (ties
    broken by shard index), and each bucket is returned sorted.  Shards
    may be empty when there are fewer tries than shards.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    loads = [0] * shards
    buckets: list[list[int]] = [[] for _ in range(shards)]
    order = sorted(
        compiled.tries,
        key=lambda length: (-compiled.tries[length].node_count, length),
    )
    for length in order:
        target = min(range(shards), key=lambda shard: (loads[shard], shard))
        loads[target] += compiled.tries[length].node_count
        buckets[target].append(length)
    return tuple(tuple(sorted(bucket)) for bucket in buckets)
