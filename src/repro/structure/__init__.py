"""Structure determination (paper Section 3).

Recovers a syntactically correct SQL structure from an error-laden ASR
transcription:

- :mod:`repro.structure.masking` — SplChar handling + literal masking
  (Section 3.1): spoken operator words become symbols, every token not in
  KeywordDict/SplCharDict becomes the placeholder ``x``.
- :mod:`repro.structure.edit_distance` — the SQL-weighted
  insert/delete-only edit distance of Algorithm 1 (WK=1.2, WS=1.1, WL=1).
- :mod:`repro.structure.trie` — the token trie storing ground-truth
  structures (Section 3.3).
- :mod:`repro.structure.indexer` — 50 length-partitioned tries.
- :mod:`repro.structure.compiled` — the offline compile step: interned
  tokens, per-id weight vectors, and flat first-child/next-sibling trie
  arrays the fast search kernel runs on.
- :mod:`repro.structure.search` — branch-and-bound similarity search with
  bidirectional bounds (Proposition 1, Box 2) plus the two approximate
  optimizations: Diversity-Aware Pruning and Inverted Indexes
  (Appendix D.3).  Three kernels — level-synchronous numpy ``compiled``
  (default), scalar flat-array ``flat``, and node-object ``reference``
  — return bit-identical results.
"""

from repro.structure.masking import MaskedTranscription, handle_splchars, mask_literals, preprocess_transcription
from repro.structure.edit_distance import (
    TokenWeights,
    edit_distance_bounds,
    token_weight,
    weighted_edit_distance,
)
from repro.structure.trie import TokenTrie, TrieNode
from repro.structure.compiled import CompiledStructureIndex, CompiledTrie
from repro.structure.indexer import StructureIndex
from repro.structure.search import SearchResult, SearchStats, StructureSearchEngine

__all__ = [
    "CompiledStructureIndex",
    "CompiledTrie",
    "MaskedTranscription",
    "handle_splchars",
    "mask_literals",
    "preprocess_transcription",
    "TokenWeights",
    "edit_distance_bounds",
    "token_weight",
    "weighted_edit_distance",
    "TokenTrie",
    "TrieNode",
    "StructureIndex",
    "SearchResult",
    "SearchStats",
    "StructureSearchEngine",
]
