"""SQL grammar substrate for SpeakQL.

This package implements the grammar-side machinery the paper's structure
determination component depends on:

- :mod:`repro.grammar.vocabulary`: the fixed dictionaries of SQL keywords
  and special characters (paper Section 3.1) and token classification.
- :mod:`repro.grammar.cfg`: generic context-free grammar machinery
  (symbols, productions, bounded enumeration).
- :mod:`repro.grammar.speakql_grammar`: the paper's Box 1 production rules
  for the supported SQL subset.
- :mod:`repro.grammar.generator`: the offline Structure Generator that
  enumerates ground-truth SQL structures up to a token budget
  (paper Section 3.2).
- :mod:`repro.grammar.categorizer`: assignment of placeholder categories
  (table name / attribute name / attribute value; paper Section 4.1).
"""

from repro.grammar.vocabulary import (
    KEYWORD_DICT,
    SPLCHAR_DICT,
    TokenClass,
    classify_token,
    is_keyword,
    is_splchar,
    tokenize_sql,
)
from repro.grammar.cfg import Grammar, Production, Symbol
from repro.grammar.speakql_grammar import build_speakql_grammar
from repro.grammar.generator import StructureGenerator
from repro.grammar.categorizer import LiteralCategory, assign_categories

__all__ = [
    "KEYWORD_DICT",
    "SPLCHAR_DICT",
    "TokenClass",
    "classify_token",
    "is_keyword",
    "is_splchar",
    "tokenize_sql",
    "Grammar",
    "Production",
    "Symbol",
    "build_speakql_grammar",
    "StructureGenerator",
    "LiteralCategory",
    "assign_categories",
]
