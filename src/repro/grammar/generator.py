"""The offline Structure Generator (paper Section 3.2).

Uses the grammar's production rules recursively to generate token
sequences, each a string representing a SQL ground-truth structure.  The
paper caps strings at 50 tokens (~1.6M structures); the cap here is a
parameter because the number of structures grows combinatorially and
interactive settings want smaller indexes.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.grammar.cfg import Grammar
from repro.grammar.speakql_grammar import build_speakql_grammar

#: The paper's structure-length cap.
PAPER_MAX_TOKENS = 50

#: Default cap used by the interactive engine.  Chosen so index build stays
#: sub-second while covering every structure in the evaluation workloads
#: (random dataset queries are generated with the same 20-token cap).
DEFAULT_MAX_TOKENS = 20


@dataclass
class StructureGenerator:
    """Enumerates ground-truth SQL structures from the subset grammar.

    Attributes
    ----------
    grammar:
        The CFG to enumerate.  Defaults to the SpeakQL subset grammar with
        extensions.
    max_tokens:
        Upper bound on structure length in tokens.
    max_structures:
        Optional hard cap on the number of generated structures (safety
        valve for very large ``max_tokens``).
    """

    grammar: Grammar = field(default_factory=build_speakql_grammar)
    max_tokens: int = DEFAULT_MAX_TOKENS
    max_structures: int | None = None

    def generate(self) -> Iterator[tuple[str, ...]]:
        """Yield each distinct structure as a tuple of tokens."""
        yield from self.grammar.enumerate_strings(
            max_tokens=self.max_tokens, max_strings=self.max_structures
        )

    def generate_strings(self) -> Iterator[str]:
        """Yield each structure rendered as a space-joined string."""
        for tokens in self.generate():
            yield " ".join(tokens)

    def count(self) -> int:
        """Number of structures under the current caps (materializes)."""
        return sum(1 for _ in self.generate())
