"""The paper's SQL subset grammar (Box 1) plus documented extensions.

Box 1 of the paper gives the production rules of the supported SQL subset
in a compact form where every literal is the placeholder terminal ``x``.
We reproduce those rules verbatim in :func:`box1_productions`.

Two small, documented extensions are enabled by default because the
paper's *own* evaluation queries (Table 6) require them while Box 1 as
printed does not derive them:

- ``NATURAL JOIN`` in the FROM clause (used by Q2, Q4, Q10, Q11); Box 1
  only lists comma-separated FROM lists.
- A trailing GROUP BY / ORDER BY / LIMIT clause *without* a WHERE clause
  (used by Q6); Box 1 attaches CLS/LMT only inside the WHERE-derived
  ``AGG`` nonterminal.

Pass ``extensions=False`` to get the verbatim Box 1 language.
"""

from __future__ import annotations

from repro.grammar.cfg import Grammar, Production, Symbol

# --- terminals -----------------------------------------------------------

T_SELECT = Symbol("SELECT", terminal=True)
T_FROM = Symbol("FROM", terminal=True)
T_WHERE = Symbol("WHERE", terminal=True)
T_STAR = Symbol("*", terminal=True)
T_LITERAL = Symbol("x", terminal=True)
T_EQ = Symbol("=", terminal=True)
T_LT = Symbol("<", terminal=True)
T_GT = Symbol(">", terminal=True)
T_AND = Symbol("AND", terminal=True)
T_OR = Symbol("OR", terminal=True)
T_NOT = Symbol("NOT", terminal=True)
T_BETWEEN = Symbol("BETWEEN", terminal=True)
T_DOT = Symbol(".", terminal=True)
T_COMMA = Symbol(",", terminal=True)
T_ORDER = Symbol("ORDER", terminal=True)
T_GROUP = Symbol("GROUP", terminal=True)
T_BY = Symbol("BY", terminal=True)
T_LIMIT = Symbol("LIMIT", terminal=True)
T_AVG = Symbol("AVG", terminal=True)
T_SUM = Symbol("SUM", terminal=True)
T_MAX = Symbol("MAX", terminal=True)
T_MIN = Symbol("MIN", terminal=True)
T_COUNT = Symbol("COUNT", terminal=True)
T_LPAREN = Symbol("(", terminal=True)
T_RPAREN = Symbol(")", terminal=True)
T_IN = Symbol("IN", terminal=True)
T_NATURAL = Symbol("NATURAL", terminal=True)
T_JOIN = Symbol("JOIN", terminal=True)

# --- nonterminals --------------------------------------------------------

Q = Symbol("Q")
S = Symbol("S")
C = Symbol("C")
CF = Symbol("CF")
F = Symbol("F")
W = Symbol("W")
WD = Symbol("WD")
EXP = Symbol("EXP")
WDD = Symbol("WDD")
AGG = Symbol("AGG")
CS = Symbol("CS")
CLS = Symbol("CLS")
LST = Symbol("LST")
OP = Symbol("OP")
SEL_OP = Symbol("SEL_OP")
NJ = Symbol("NJ")  # extension: chain of NATURAL JOIN <table>
G = Symbol("G")  # extension: trailing clause without WHERE

L = T_LITERAL
ST = T_STAR


def box1_productions() -> list[Production]:
    """The verbatim production rules of the paper's Box 1."""
    rules: list[tuple[Symbol, tuple[Symbol, ...]]] = [
        # 1: Q -> S F | S F W
        (Q, (S, F)),
        (Q, (S, F, W)),
        # 2: S -> SEL LST | SEL L C | SEL SEL_OP ( L ) | SEL SEL_OP ( L ) C
        #        | SEL COUNT ( * ) | SEL COUNT ( * ) C
        (S, (T_SELECT, LST)),
        (S, (T_SELECT, L, C)),
        (S, (T_SELECT, SEL_OP, T_LPAREN, L, T_RPAREN)),
        (S, (T_SELECT, SEL_OP, T_LPAREN, L, T_RPAREN, C)),
        (S, (T_SELECT, T_COUNT, T_LPAREN, ST, T_RPAREN)),
        (S, (T_SELECT, T_COUNT, T_LPAREN, ST, T_RPAREN, C)),
        # 3: C -> , L | C , L | , SEL_OP ( L ) | C , SEL_OP ( L )
        (C, (T_COMMA, L)),
        (C, (C, T_COMMA, L)),
        (C, (T_COMMA, SEL_OP, T_LPAREN, L, T_RPAREN)),
        (C, (C, T_COMMA, SEL_OP, T_LPAREN, L, T_RPAREN)),
        # 4: CF -> , L | CF , L
        (CF, (T_COMMA, L)),
        (CF, (CF, T_COMMA, L)),
        # 5: F -> FROM L | FROM L CF
        (F, (T_FROM, L)),
        (F, (T_FROM, L, CF)),
        # 6: W -> WHERE WD | WHERE AGG
        (W, (T_WHERE, WD)),
        (W, (T_WHERE, AGG)),
        # 7: WD -> EXP | EXP AND WD | EXP OR WD
        (WD, (EXP,)),
        (WD, (EXP, T_AND, WD)),
        (WD, (EXP, T_OR, WD)),
        # 8: EXP -> L OP L | WDD OP L | WDD OP WDD | L OP WDD
        (EXP, (L, OP, L)),
        (EXP, (WDD, OP, L)),
        (EXP, (WDD, OP, WDD)),
        (EXP, (L, OP, WDD)),
        # 9: WDD -> L . L
        (WDD, (L, T_DOT, L)),
        # 10: AGG -> WD CLS L | WD CLS WDD | WD LIMIT L | L BETWEEN L AND L
        #          | L NOT BETWEEN L AND L | L IN ( L ) | L IN ( L CS )
        (AGG, (WD, CLS, L)),
        (AGG, (WD, CLS, WDD)),
        (AGG, (WD, T_LIMIT, L)),
        (AGG, (L, T_BETWEEN, L, T_AND, L)),
        (AGG, (L, T_NOT, T_BETWEEN, L, T_AND, L)),
        (AGG, (L, T_IN, T_LPAREN, L, T_RPAREN)),
        (AGG, (L, T_IN, T_LPAREN, L, CS, T_RPAREN)),
        # 11: CS -> , L | CS , L
        (CS, (T_COMMA, L)),
        (CS, (CS, T_COMMA, L)),
        # 12: CLS -> ORDER BY | GROUP BY
        (CLS, (T_ORDER, T_BY)),
        (CLS, (T_GROUP, T_BY)),
        # 13: LST -> L | *
        (LST, (L,)),
        (LST, (ST,)),
        # 19: OP -> = | < | >
        (OP, (T_EQ,)),
        (OP, (T_LT,)),
        (OP, (T_GT,)),
        # 30: SEL_OP -> AVG | SUM | MAX | MIN | COUNT
        (SEL_OP, (T_AVG,)),
        (SEL_OP, (T_SUM,)),
        (SEL_OP, (T_MAX,)),
        (SEL_OP, (T_MIN,)),
        (SEL_OP, (T_COUNT,)),
    ]
    return [Production(lhs, rhs) for lhs, rhs in rules]


def extension_productions() -> list[Production]:
    """Natural-join FROM clauses and WHERE-less trailing clauses."""
    rules: list[tuple[Symbol, tuple[Symbol, ...]]] = [
        # FROM L NATURAL JOIN L [NATURAL JOIN L ...]
        (F, (T_FROM, L, NJ)),
        (NJ, (T_NATURAL, T_JOIN, L)),
        (NJ, (NJ, T_NATURAL, T_JOIN, L)),
        # Q -> S F G : trailing clause with no WHERE.
        (Q, (S, F, G)),
        (G, (CLS, L)),
        (G, (CLS, WDD)),
        (G, (T_LIMIT, L)),
        (G, (CLS, L, T_LIMIT, L)),
        (G, (CLS, WDD, T_LIMIT, L)),
        # Inside WHERE: ORDER/GROUP BY followed by LIMIT (Q10-style tails).
        (AGG, (WD, CLS, L, T_LIMIT, L)),
        (AGG, (WD, CLS, WDD, T_LIMIT, L)),
    ]
    return [Production(lhs, rhs) for lhs, rhs in rules]


def build_speakql_grammar(extensions: bool = True) -> Grammar:
    """Build the SpeakQL SQL-subset grammar.

    Parameters
    ----------
    extensions:
        When True (default) the grammar includes natural joins and
        WHERE-less trailing clauses (see module docstring).  When False
        the language is exactly Box 1 as printed in the paper.
    """
    productions = box1_productions()
    if extensions:
        productions += extension_productions()
    return Grammar(start=Q, productions=productions)
