"""Placeholder category assignment (paper Section 4.1).

Each placeholder variable in a SQL structure is a table name (type ``T``),
an attribute name (type ``A``), or an attribute value (type ``V``).  The
paper assigns the category "using SQL grammar"; because the supported
subset has an unambiguous clause layout, category assignment reduces to a
deterministic scan over the structure tokens:

- placeholders in the FROM list (comma- or NATURAL JOIN-separated) are
  table names;
- placeholders in the SELECT list (including inside aggregate parentheses)
  and on the left of comparison operators, after ORDER BY / GROUP BY, and
  as the probe of BETWEEN / IN are attribute names;
- placeholders on the right of comparison operators, inside IN lists,
  as BETWEEN bounds, and after LIMIT are attribute values;
- in a dotted pair ``x . x`` the left placeholder is a table name and the
  right one an attribute name.
"""

from __future__ import annotations

import enum

from repro.grammar.vocabulary import LITERAL_PLACEHOLDER


class LiteralCategory(enum.Enum):
    """Category type of a literal placeholder."""

    TABLE = "T"
    ATTRIBUTE = "A"
    VALUE = "V"


class _Clause(enum.Enum):
    SELECT = enum.auto()
    FROM = enum.auto()
    WHERE = enum.auto()
    ORDER_GROUP = enum.auto()
    LIMIT = enum.auto()


def assign_categories(structure: list[str] | tuple[str, ...]) -> list[LiteralCategory]:
    """Assign a category to each placeholder in ``structure``, in order.

    ``structure`` is a token sequence where every literal is the
    placeholder token ``x`` (as produced by the Structure Generator or by
    literal masking).

    >>> cats = assign_categories("SELECT x FROM x WHERE x = x".split())
    >>> [c.value for c in cats]
    ['A', 'T', 'A', 'V']
    """
    tokens = list(structure)
    categories: list[LiteralCategory] = []
    clause = _Clause.SELECT
    i = 0
    n = len(tokens)
    while i < n:
        token = tokens[i]
        upper = token.upper()
        if upper == "SELECT":
            clause = _Clause.SELECT
            i += 1
            continue
        if upper == "FROM":
            clause = _Clause.FROM
            i += 1
            continue
        if upper == "WHERE":
            clause = _Clause.WHERE
            i += 1
            continue
        if upper in ("ORDER", "GROUP") and i + 1 < n and tokens[i + 1].upper() == "BY":
            clause = _Clause.ORDER_GROUP
            i += 2
            continue
        if upper == "LIMIT":
            clause = _Clause.LIMIT
            i += 1
            continue
        if token != LITERAL_PLACEHOLDER:
            i += 1
            continue

        # token is a placeholder; decide by clause and local context.
        category = _categorize_placeholder(tokens, i, clause)
        categories.append(category)
        i += 1
    return categories


def _categorize_placeholder(
    tokens: list[str], i: int, clause: _Clause
) -> LiteralCategory:
    nxt = tokens[i + 1].upper() if i + 1 < len(tokens) else ""
    prev = tokens[i - 1].upper() if i > 0 else ""

    # Dotted pair handling applies in any clause: x . x
    if nxt == ".":
        return LiteralCategory.TABLE
    if prev == ".":
        return LiteralCategory.ATTRIBUTE

    if clause is _Clause.SELECT:
        return LiteralCategory.ATTRIBUTE
    if clause is _Clause.FROM:
        return LiteralCategory.TABLE
    if clause is _Clause.ORDER_GROUP:
        return LiteralCategory.ATTRIBUTE
    if clause is _Clause.LIMIT:
        return LiteralCategory.VALUE

    # WHERE clause: position relative to operators decides.
    if prev in ("=", "<", ">"):
        return LiteralCategory.VALUE
    if nxt in ("=", "<", ">"):
        return LiteralCategory.ATTRIBUTE
    if nxt in ("BETWEEN", "IN", "NOT"):
        # probe of BETWEEN / NOT BETWEEN / IN predicates
        return LiteralCategory.ATTRIBUTE
    if prev in ("BETWEEN", ","):
        return LiteralCategory.VALUE
    if prev == "AND" and _is_between_bound(tokens, i):
        return LiteralCategory.VALUE
    if prev == "(" or nxt in (")", ","):
        # inside an IN list (aggregate parens never reach WHERE clause)
        return LiteralCategory.VALUE
    if prev in ("AND", "OR") or nxt in ("AND", "OR"):
        # start of a fresh predicate: attribute side
        return LiteralCategory.ATTRIBUTE
    return LiteralCategory.VALUE


def _is_between_bound(tokens: list[str], i: int) -> bool:
    """True when tokens[i] is the upper bound of ``x BETWEEN x AND x``."""
    # Walk left past "AND x BETWEEN" pattern: i-1=AND, i-2=x, i-3=BETWEEN.
    return i >= 3 and tokens[i - 3].upper() == "BETWEEN"
