"""Generic context-free grammar machinery.

The Structure Generator (paper Section 3.2) "uses the production rules in
the grammar recursively to generate a sequence of tokens" — i.e. it
enumerates the language of the grammar up to a token budget.  This module
provides the grammar representation plus a bounded breadth-first
enumeration that is exact: it yields *every* terminal string of the
language whose length does not exceed the budget, each exactly once.
"""

from __future__ import annotations

import functools
from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Symbol:
    """A grammar symbol: terminal (a concrete token) or nonterminal."""

    name: str
    terminal: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"'{self.name}'" if self.terminal else self.name


@dataclass(frozen=True)
class Production:
    """A production rule ``lhs -> rhs`` with an ordered right-hand side."""

    lhs: Symbol
    rhs: tuple[Symbol, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rhs = " ".join(repr(s) for s in self.rhs)
        return f"{self.lhs.name} -> {rhs}"


class GrammarError(ValueError):
    """Raised for malformed grammars (unknown symbols, no productions)."""


@dataclass(eq=False)
class Grammar:
    """A context-free grammar with bounded exact enumeration.

    Parameters
    ----------
    start:
        The start nonterminal.
    productions:
        All production rules.  Every nonterminal reachable from ``start``
        must have at least one production.
    """

    start: Symbol
    productions: list[Production]
    _by_lhs: dict[Symbol, list[Production]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_lhs = defaultdict(list)
        for prod in self.productions:
            if prod.lhs.terminal:
                raise GrammarError(f"terminal on LHS: {prod.lhs.name}")
            self._by_lhs[prod.lhs].append(prod)
        self._validate()

    def _validate(self) -> None:
        seen: set[Symbol] = set()
        frontier = [self.start]
        while frontier:
            sym = frontier.pop()
            if sym in seen or sym.terminal:
                continue
            seen.add(sym)
            if sym not in self._by_lhs:
                raise GrammarError(f"nonterminal without productions: {sym.name}")
            for prod in self._by_lhs[sym]:
                frontier.extend(prod.rhs)

    def productions_for(self, symbol: Symbol) -> list[Production]:
        """Productions whose left-hand side is ``symbol``."""
        return self._by_lhs.get(symbol, [])

    @functools.cache
    def min_terminal_length(self, symbol: Symbol) -> int:
        """Shortest terminal string derivable from ``symbol`` (in tokens).

        Computed by fixed-point iteration so that left-recursive rules
        (e.g. ``C -> C COM L``) terminate.
        """
        if symbol.terminal:
            return 1
        best: dict[Symbol, int] = {}
        inf = float("inf")

        def length_of(sym: Symbol) -> float:
            if sym.terminal:
                return 1
            return best.get(sym, inf)

        changed = True
        while changed:
            changed = False
            for prod in self.productions:
                total = sum(length_of(s) for s in prod.rhs)
                if total < best.get(prod.lhs, inf):
                    best[prod.lhs] = int(total)
                    changed = True
        if symbol not in best:
            raise GrammarError(f"symbol derives no terminal string: {symbol.name}")
        return best[symbol]

    def enumerate_strings(
        self, max_tokens: int, max_strings: int | None = None
    ) -> Iterator[tuple[str, ...]]:
        """Enumerate terminal strings of the language, shortest-first.

        Yields every distinct terminal string with at most ``max_tokens``
        tokens.  Enumeration proceeds by iterative deepening over
        sentential forms: a worklist of partially-expanded forms is
        expanded leftmost-nonterminal-first, and forms whose minimum
        completion length exceeds the budget are pruned.  ``max_strings``
        optionally caps the number of yielded strings.

        The paper caps structures at 50 tokens, producing ~1.6M strings;
        callers choose smaller budgets for interactive use.
        """
        if max_tokens < 1:
            return
        emitted = 0
        seen: set[tuple[str, ...]] = set()
        # A sentential form is a tuple of Symbols; expand leftmost
        # nonterminal.  Depth-first with explicit stack keeps memory
        # proportional to the derivation depth times branching.
        stack: list[tuple[Symbol, ...]] = [(self.start,)]
        while stack:
            form = stack.pop()
            idx = next(
                (i for i, s in enumerate(form) if not s.terminal),
                None,
            )
            if idx is None:
                tokens = tuple(s.name for s in form)
                if len(tokens) <= max_tokens and tokens not in seen:
                    seen.add(tokens)
                    yield tokens
                    emitted += 1
                    if max_strings is not None and emitted >= max_strings:
                        return
                continue
            nonterminal = form[idx]
            prefix, suffix = form[:idx], form[idx + 1 :]
            # Minimum tokens already committed outside the expansion point.
            fixed = len(prefix) + sum(
                self.min_terminal_length(s) for s in suffix
            )
            for prod in self.productions_for(nonterminal):
                expansion_min = sum(self.min_terminal_length(s) for s in prod.rhs)
                if fixed + expansion_min > max_tokens:
                    continue
                stack.append(prefix + prod.rhs + suffix)

    def derives(self, tokens: Iterable[str], max_tokens: int | None = None) -> bool:
        """Check membership of a token string via CYK on a binarized copy.

        Used in tests to validate that generated structures belong to the
        language.  Suitable for short strings only (cubic time).
        """
        tokens = list(tokens)
        if not tokens:
            return False
        if max_tokens is not None and len(tokens) > max_tokens:
            return False
        return self._cyk(tuple(tokens))

    @functools.cached_property
    def _cnf(self) -> tuple[dict[str, set[Symbol]], dict[tuple[Symbol, Symbol], set[Symbol]], set[Symbol]]:
        """Chomsky-normal-form tables: terminal map, pair map, nullable-free."""
        term_map: dict[str, set[Symbol]] = defaultdict(set)
        pair_map: dict[tuple[Symbol, Symbol], set[Symbol]] = defaultdict(set)
        unit_edges: dict[Symbol, set[Symbol]] = defaultdict(set)
        counter = [0]

        def fresh() -> Symbol:
            counter[0] += 1
            return Symbol(f"_B{counter[0]}")

        def symbol_of(sym: Symbol) -> Symbol:
            if not sym.terminal:
                return sym
            proxy = Symbol(f"_T[{sym.name}]")
            term_map[sym.name].add(proxy)
            return proxy

        for prod in self.productions:
            rhs = [symbol_of(s) for s in prod.rhs]
            if len(rhs) == 1:
                first = prod.rhs[0]
                if first.terminal:
                    term_map[first.name].add(prod.lhs)
                else:
                    unit_edges[prod.lhs].add(rhs[0])
                continue
            # Binarize A -> X1 X2 ... Xn left-to-right: each fresh symbol
            # derives the pair (accumulated-prefix, next-symbol).
            left = rhs[0]
            for i in range(1, len(rhs) - 1):
                nxt = fresh()
                pair_map[(left, rhs[i])].add(nxt)
                left = nxt
            pair_map[(left, rhs[-1])].add(prod.lhs)

        # Close unit productions into term/pair maps.
        closure: dict[Symbol, set[Symbol]] = {}

        def ancestors(sym: Symbol) -> set[Symbol]:
            if sym in closure:
                return closure[sym]
            result = {sym}
            closure[sym] = result
            for parent, children in unit_edges.items():
                if sym in children:
                    result |= ancestors(parent)
            closure[sym] = result
            return result

        for word in list(term_map):
            expanded: set[Symbol] = set()
            for sym in term_map[word]:
                expanded |= ancestors(sym)
            term_map[word] = expanded
        for key in list(pair_map):
            expanded = set()
            for sym in pair_map[key]:
                expanded |= ancestors(sym)
            pair_map[key] = expanded
        return dict(term_map), dict(pair_map), set()

    def _cyk(self, tokens: tuple[str, ...]) -> bool:
        term_map, pair_map, _ = self._cnf
        n = len(tokens)
        if n == 1:
            return self.start in term_map.get(tokens[0], set())
        table: list[list[set[Symbol]]] = [
            [set() for _ in range(n)] for _ in range(n)
        ]
        for i, word in enumerate(tokens):
            table[i][i] = set(term_map.get(word, set()))
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                j = i + span - 1
                cell = table[i][j]
                for k in range(i, j):
                    for left in table[i][k]:
                        for right in table[k + 1][j]:
                            cell |= pair_map.get((left, right), set())
        return self.start in table[0][n - 1]
