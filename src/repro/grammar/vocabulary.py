"""Token vocabulary of the supported SQL subset.

The paper (Section 3.1) observes that only three kinds of tokens arise in
SQL: *Keywords*, *Special Characters* ("SplChars"), and *Literals*.
Keywords and SplChars come from a small closed vocabulary fixed by the
grammar; literals (table names, attribute names, attribute values) have an
effectively unbounded vocabulary.

``KEYWORD_DICT`` and ``SPLCHAR_DICT`` below are verbatim the dictionaries
from the paper:

    KeywordDict: Select, From, Where, Order By, Group By, Natural Join,
    And, Or, Not, Limit, Between, In, Sum, Count, Max, Avg, Min
    SplCharDict: * = < > ( ) . ,

Multi-word keywords ("ORDER BY", "GROUP BY", "NATURAL JOIN") are stored as
their individual words as well, because both the ASR transcription and the
grammar emit them one word at a time.
"""

from __future__ import annotations

import enum
import re

# Single-word form of every keyword in the paper's KeywordDict.  Multi-word
# entries (ORDER BY, GROUP BY, NATURAL JOIN) contribute their component
# words: the structure search operates on word-level tokens.
KEYWORD_DICT: frozenset[str] = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "ORDER",
        "GROUP",
        "BY",
        "NATURAL",
        "JOIN",
        "AND",
        "OR",
        "NOT",
        "LIMIT",
        "BETWEEN",
        "IN",
        "SUM",
        "COUNT",
        "MAX",
        "AVG",
        "MIN",
    }
)

SPLCHAR_DICT: frozenset[str] = frozenset({"*", "=", "<", ">", "(", ")", ".", ","})

#: Aggregate function keywords (the paper's SEL_OP set).
AGGREGATE_KEYWORDS: frozenset[str] = frozenset({"AVG", "SUM", "MAX", "MIN", "COUNT"})

#: The "prime superset" used by Diversity-Aware Pruning (Appendix D.3):
#: branches differing only in one of these tokens may be pruned.
PRIME_SUPERSET: frozenset[str] = frozenset(
    AGGREGATE_KEYWORDS | {"AND", "OR"} | {"=", "<", ">"}
)

#: Placeholder token used for masked literals in SQL structures.
LITERAL_PLACEHOLDER = "x"


class TokenClass(enum.Enum):
    """The three token classes of the paper (Section 2)."""

    KEYWORD = "keyword"
    SPLCHAR = "splchar"
    LITERAL = "literal"


def is_keyword(token: str) -> bool:
    """Return True if ``token`` is a SQL keyword of the supported subset."""
    return token.upper() in KEYWORD_DICT


def is_splchar(token: str) -> bool:
    """Return True if ``token`` is a supported special character."""
    return token in SPLCHAR_DICT


def classify_token(token: str) -> TokenClass:
    """Classify a token as keyword, splchar, or literal.

    Classification is case-insensitive for keywords, exact for splchars;
    everything else — identifiers, numbers, dates, quoted strings — is a
    literal.
    """
    if is_keyword(token):
        return TokenClass.KEYWORD
    if is_splchar(token):
        return TokenClass.SPLCHAR
    return TokenClass.LITERAL


_TOKEN_RE = re.compile(
    r"""
    '[^']*'            # single-quoted string literal
  | "[^"]*"            # double-quoted string literal
  | [A-Za-z_][\w$#-]*  # identifier / keyword (allows CUSTID_1729A, d002)
  | \d{4}-\d{2}-\d{2}  # ISO date
  | \d+(?:\.\d+)?      # number
  | [*=<>().,]         # special characters
    """,
    re.VERBOSE,
)


def tokenize_sql(text: str) -> list[str]:
    """Tokenize a SQL string into word-level tokens.

    Quoted string literals are kept as single tokens with their quotes
    stripped, matching the paper's token-multiset evaluation where the
    token is the literal value itself.

    >>> tokenize_sql("SELECT AVG ( salary ) FROM Salaries")
    ['SELECT', 'AVG', '(', 'salary', ')', 'FROM', 'Salaries']
    """
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        token = match.group(0)
        if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
            token = token[1:-1]
        if token:
            tokens.append(token)
    return tokens


def normalize_token(token: str) -> str:
    """Canonical form used for multiset comparison: keywords uppercased,
    splchars as-is, literals lowercased (ASR output is caseless)."""
    cls = classify_token(token)
    if cls is TokenClass.KEYWORD:
        return token.upper()
    if cls is TokenClass.SPLCHAR:
        return token
    return token.lower()
