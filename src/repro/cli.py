"""Command-line interface: ``python -m repro`` or the ``speakql`` script.

Subcommands:

- ``dictate``  — simulate dictating a SQL query (verbalize, corrupt,
  decode, correct) against a built-in schema and print every stage.
- ``correct``  — run structure + literal determination on one or more
  raw transcription texts (``--workers N`` fans a batch over threads).
- ``schema``   — print a built-in schema (tables, columns, types).
- ``speak``    — show the spoken-word rendering of a SQL query.

``dictate`` and ``correct`` accept ``--search-kernel`` (compiled / flat
/ reference), ``--trace-out FILE`` (JSON-lines spans), and
``--metrics-out FILE`` (Prometheus text for ``.prom``/``.txt``, a human
summary table otherwise) — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.asr import make_custom_engine, verbalize_sql
from repro.core import SpeakQL, SpeakQLArtifacts, SpeakQLConfig, SpeakQLService
from repro.dataset import build_employees_catalog, build_yelp_catalog
from repro.dataset.spoken import make_spoken_dataset
from repro.observability import (
    MetricsRegistry,
    Tracer,
    write_metrics,
    write_trace_jsonl,
)
from repro.sqlengine.executor import execute
from repro.sqlengine.parser import parse_select
from repro.structure.search import (
    KERNEL_COMPILED,
    KERNEL_FLAT,
    KERNEL_REFERENCE,
)

_CATALOGS = {
    "employees": build_employees_catalog,
    "yelp": build_yelp_catalog,
}

_KERNELS = (KERNEL_COMPILED, KERNEL_FLAT, KERNEL_REFERENCE)


def _build_pipeline(
    schema: str, train: int, kernel: str = KERNEL_COMPILED
) -> SpeakQL:
    catalog = _CATALOGS[schema]()
    engine = None
    if train > 0:
        training = make_spoken_dataset("train", catalog, train, seed=7)
        engine = make_custom_engine([q.sql for q in training.queries])
    artifacts = SpeakQLArtifacts.build(engine=engine)
    config = SpeakQLConfig(search_kernel=kernel)
    return SpeakQL(catalog, artifacts=artifacts, config=config)


def _observability(args: argparse.Namespace) -> tuple[Tracer, MetricsRegistry | None]:
    """Tracer/registry for a command, live only when an --out flag asks."""
    tracer = Tracer(enabled=bool(args.trace_out))
    metrics = MetricsRegistry() if args.metrics_out else None
    return tracer, metrics


def _export_observability(
    args: argparse.Namespace,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
) -> None:
    if args.trace_out:
        count = write_trace_jsonl(tracer, args.trace_out)
        print(f"wrote {count} span(s) to {args.trace_out}", file=sys.stderr)
    if args.metrics_out and metrics is not None:
        write_metrics(metrics, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)


def _cmd_dictate(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args.schema, args.train, args.search_kernel)
    tracer, metrics = _observability(args)
    out = pipeline.query_from_speech(
        args.sql, seed=args.seed, tracer=tracer, metrics=metrics
    )
    print(f"spoken : {' '.join(verbalize_sql(args.sql))}")
    print(f"heard  : {out.asr_text}")
    print(f"output : {out.sql}")
    print(f"latency: {out.timings.total_seconds * 1000:.0f} ms")
    if args.execute:
        _execute(out.sql, pipeline)
    _export_observability(args, tracer, metrics)
    return 0


def _cmd_correct(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args.schema, train=0, kernel=args.search_kernel)
    service = SpeakQLService.from_pipeline(pipeline)
    tracer, metrics = _observability(args)
    outputs = service.correct_batch(
        args.transcriptions,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
    )
    for out in outputs:
        print(out.sql)
        if args.execute:
            _execute(out.sql, pipeline)
    _export_observability(args, tracer, metrics)
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    catalog = _CATALOGS[args.schema]()
    for table_schema in catalog.schema():
        print(table_schema.name)
        for column in table_schema.columns:
            print(f"  {column.name}: {column.type_name}")
    return 0


def _cmd_speak(args: argparse.Namespace) -> int:
    print(" ".join(verbalize_sql(args.sql)))
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.interface.repl import ReplSession

    pipeline = _build_pipeline(args.schema, args.train)
    ReplSession(pipeline=pipeline, seed=args.seed).run()
    return 0


def _execute(sql: str, pipeline: SpeakQL) -> None:
    try:
        result = execute(parse_select(sql), pipeline.catalog)
    except Exception as error:
        print(f"execution failed: {error}", file=sys.stderr)
        return
    print(f"-- {len(result.rows)} row(s): {result.columns}")
    for row in result.rows[:10]:
        print("  ", row)


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--search-kernel", choices=_KERNELS,
                        default=KERNEL_COMPILED,
                        help="structure-search kernel (all three return "
                             "bit-identical results)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write hierarchical spans as JSON lines")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write collected metrics (.prom/.txt = "
                             "Prometheus text, else a summary table)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="speakql",
        description="SpeakQL reproduction: speech-driven SQL querying.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dictate = sub.add_parser("dictate", help="dictate a SQL query")
    dictate.add_argument("sql")
    dictate.add_argument("--schema", choices=_CATALOGS, default="employees")
    dictate.add_argument("--seed", type=int, default=42)
    dictate.add_argument("--train", type=int, default=100,
                         help="training queries for the custom ASR model")
    dictate.add_argument("--execute", action="store_true")
    _add_observability_args(dictate)
    dictate.set_defaults(func=_cmd_dictate)

    correct = sub.add_parser("correct", help="correct transcription(s)")
    correct.add_argument("transcriptions", nargs="+",
                         metavar="transcription")
    correct.add_argument("--schema", choices=_CATALOGS, default="employees")
    correct.add_argument("--execute", action="store_true")
    correct.add_argument("--workers", type=int, default=1,
                         help="worker threads for batch correction "
                              "(1 = serial, paper-faithful)")
    _add_observability_args(correct)
    correct.set_defaults(func=_cmd_correct)

    schema = sub.add_parser("schema", help="print a built-in schema")
    schema.add_argument("--schema", choices=_CATALOGS, default="employees")
    schema.set_defaults(func=_cmd_schema)

    speak = sub.add_parser("speak", help="spoken rendering of a query")
    speak.add_argument("sql")
    speak.set_defaults(func=_cmd_speak)

    repl = sub.add_parser("repl", help="interactive SpeakQL session")
    repl.add_argument("--schema", choices=_CATALOGS, default="employees")
    repl.add_argument("--train", type=int, default=100)
    repl.add_argument("--seed", type=int, default=1)
    repl.set_defaults(func=_cmd_repl)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `speakql schema | head`) closed early:
        # standard Unix behaviour is to exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
