"""Command-line interface: ``python -m repro`` or the ``speakql`` script.

Subcommands:

- ``dictate``  — simulate dictating a SQL query (verbalize, corrupt,
  decode, correct) against a built-in schema and print every stage.
- ``correct``  — run structure + literal determination on one or more
  raw transcription texts (``--workers N`` fans a batch over threads).
- ``schema``   — print a built-in schema (tables, columns, types).
- ``speak``    — show the spoken-word rendering of a SQL query.
- ``replay``   — re-execute queries from a replay bundle, asserting
  bit-identical output (non-zero exit on any drift).
- ``explain``  — render one recorded query as a human-readable
  forensic narrative (channel events, candidates, voting).
- ``execute``  — run SQL on a real execution backend (``--db sqlite``
  or ``--db duckdb``) loaded with the deterministic synthetic instance;
  with ``--gold`` also prints the execution-accuracy verdict
  (see ``docs/execution.md``).
- ``serve``    — run the resilient serving daemon: JSON-lines requests
  on stdin, responses on stdout, with per-request deadlines, load
  shedding, degraded-mode fallbacks, and HTTP health/readiness probes;
  ``--async`` swaps in the micro-batching asyncio front end (pipelined
  stdin plus ``--port`` TCP) — see ``docs/serving.md``.

``dictate`` and ``correct`` accept ``--search-kernel`` (compiled / flat
/ reference), ``--trace-out FILE`` (JSON-lines spans), ``--metrics-out
FILE`` (Prometheus text for ``.prom``/``.txt``, a human summary table
otherwise), and ``--record-out FILE`` (a forensic replay bundle for
``replay``/``explain``) — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import QueryRequest
from repro.asr import make_custom_engine, verbalize_sql
from repro.core import SpeakQL, SpeakQLArtifacts, SpeakQLConfig, SpeakQLService
from repro.dataset import build_employees_catalog, build_yelp_catalog
from repro.dataset.spoken import make_spoken_dataset
from repro.observability import (
    MetricsRegistry,
    Recorder,
    ReplayBundle,
    ReplayError,
    Tracer,
    render_record,
    replay_bundle,
    write_metrics,
    write_trace_jsonl,
)
from repro.sqlengine.executor import execute
from repro.sqlengine.parser import parse_select
from repro.structure.search import (
    KERNEL_COMPILED,
    KERNEL_FLAT,
    KERNEL_REFERENCE,
)

_CATALOGS = {
    "employees": build_employees_catalog,
    "yelp": build_yelp_catalog,
}

_KERNELS = (KERNEL_COMPILED, KERNEL_FLAT, KERNEL_REFERENCE)


def _build_pipeline(
    schema: str, train: int, kernel: str = KERNEL_COMPILED
) -> SpeakQL:
    catalog = _CATALOGS[schema]()
    engine = None
    if train > 0:
        training = make_spoken_dataset("train", catalog, train, seed=7)
        engine = make_custom_engine([q.sql for q in training.queries])
    artifacts = SpeakQLArtifacts.build(engine=engine)
    config = SpeakQLConfig(search_kernel=kernel)
    return SpeakQL(catalog, artifacts=artifacts, config=config)


def _observability(args: argparse.Namespace) -> tuple[Tracer, MetricsRegistry | None]:
    """Tracer/registry for a command, live only when an --out flag asks."""
    tracer = Tracer(enabled=bool(args.trace_out))
    metrics = MetricsRegistry() if args.metrics_out else None
    return tracer, metrics


def _export_observability(
    args: argparse.Namespace,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
) -> None:
    if args.trace_out:
        count = write_trace_jsonl(tracer, args.trace_out)
        print(f"wrote {count} span(s) to {args.trace_out}", file=sys.stderr)
    if args.metrics_out and metrics is not None:
        write_metrics(metrics, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)


def _write_bundle(
    args: argparse.Namespace,
    pipeline: SpeakQL,
    recorder: Recorder | None,
    train: int,
) -> None:
    """Write the recorded queries as a replay bundle at ``--record-out``."""
    if recorder is None or not args.record_out:
        return
    service = SpeakQLService.from_pipeline(pipeline)
    service.write_replay_bundle(
        args.record_out,
        recorder,
        environment={
            "schema": args.schema,
            "train": train,
            "search_kernel": args.search_kernel,
        },
    )
    print(
        f"wrote {len(recorder)} record(s) to {args.record_out}",
        file=sys.stderr,
    )


def _deadline_seconds(args: argparse.Namespace) -> float | None:
    deadline_ms = getattr(args, "deadline_ms", None)
    return deadline_ms / 1000.0 if deadline_ms is not None else None


def _cmd_dictate(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args.schema, args.train, args.search_kernel)
    tracer, metrics = _observability(args)
    recorder = Recorder() if args.record_out else None
    request = QueryRequest(
        text=args.sql, seed=args.seed, deadline=_deadline_seconds(args)
    )
    record = recorder.start_request(request) if recorder is not None else None
    from repro.serving import ServingRuntime

    runtime = ServingRuntime(
        SpeakQLService.from_pipeline(pipeline), tracer=tracer
    )
    response = runtime.submit(request, record=record, pipeline_metrics=metrics)
    if not response.ok:
        print(f"outcome: {response.outcome} ({response.error})",
              file=sys.stderr)
        _export_observability(args, tracer, metrics)
        return 1
    out = response.output
    print(f"spoken : {' '.join(verbalize_sql(args.sql))}")
    print(f"heard  : {out.asr_text}")
    print(f"output : {out.sql}")
    print(f"latency: {out.timings.total_seconds * 1000:.0f} ms")
    if response.outcome != "served":
        print(f"outcome: {response.outcome} (rung {response.rung})",
              file=sys.stderr)
    if args.execute:
        _execute(out.sql, pipeline)
    _export_observability(args, tracer, metrics)
    _write_bundle(args, pipeline, recorder, train=args.train)
    return 0


def _cmd_correct(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args.schema, train=0, kernel=args.search_kernel)
    service = SpeakQLService.from_pipeline(pipeline)
    tracer, metrics = _observability(args)
    recorder = Recorder() if args.record_out else None
    requests = [
        QueryRequest(text=text, deadline=_deadline_seconds(args))
        for text in args.transcriptions
    ]
    outputs = service.run_batch(
        requests,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
        recorder=recorder,
    )
    for out in outputs:
        print(out.sql)
        if args.execute:
            _execute(out.sql, pipeline)
    _export_observability(args, tracer, metrics)
    _write_bundle(args, pipeline, recorder, train=0)
    return 0


class _Terminated(SystemExit):
    """Raised by the serve SIGTERM handler so ``finally`` blocks run."""


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.errors import ShardPoolError
    from repro.observability import RotatingTraceSink
    from repro.serving import (
        AsyncServingDaemon,
        ServingDaemon,
        ServingRuntime,
        TelemetryPlane,
        run_async_daemon,
    )

    pipeline = _build_pipeline(args.schema, args.train, args.search_kernel)
    # The registry is always live: the telemetry plane scrapes it via
    # GET /metrics, independent of whether an exit dump was requested.
    metrics = MetricsRegistry()
    tracer = Tracer(enabled=bool(args.trace_out))
    trace_sink = (
        RotatingTraceSink(args.trace_out, max_bytes=args.trace_max_bytes)
        if args.trace_out
        else None
    )
    service = SpeakQLService.from_pipeline(pipeline)
    if args.shards:
        # A pool that cannot start is a hard startup error: exiting
        # non-zero beats silently serving single-process when the
        # operator asked for shards.
        try:
            service.enable_sharding(args.shards, metrics=metrics,
                                    tracer=tracer)
        except (ShardPoolError, ValueError) as error:
            print(f"shard pool failed to start: {error}", file=sys.stderr)
            return 1
    runtime = ServingRuntime(
        service,
        queue_limit=args.queue_limit,
        degrade_below=(
            args.degrade_below_ms / 1000.0
            if args.degrade_below_ms is not None
            else None
        ),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        tracer=tracer,
        metrics=metrics,
        trace_sample_rate=args.trace_sample_rate,
        trace_sink=trace_sink,
        session_ttl=args.session_ttl,
        session_limit=args.session_limit,
    )
    use_async = getattr(args, "use_async", False)
    frontend_metrics = None
    daemon = None
    code = 0

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        raise _Terminated(0)

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        if use_async:
            # The batcher writes into its own registry on the event-loop
            # thread (registries are not locked); the telemetry plane
            # snapshots it on the loop, and it is merged into the main
            # registry after the loop exits, before export.
            frontend_metrics = MetricsRegistry()
            telemetry = TelemetryPlane(runtime, registries=(frontend_metrics,))
            daemon = AsyncServingDaemon(
                runtime,
                health_port=args.health_port,
                port=args.port,
                max_batch_size=args.batch_size,
                max_wait_ms=args.batch_wait_ms,
                max_line_bytes=args.max_line_bytes,
                metrics=frontend_metrics,
                telemetry_port=args.telemetry_port,
                telemetry=telemetry,
            )
            code = run_async_daemon(daemon)
        else:
            telemetry = TelemetryPlane(runtime)
            daemon = ServingDaemon(
                runtime,
                health_port=args.health_port,
                max_line_bytes=args.max_line_bytes,
                telemetry_port=args.telemetry_port,
                telemetry=telemetry,
            )
            if args.health_port is not None:
                daemon.start_health_server()
                host, port = daemon.health_address
                print(f"health: http://{host}:{port}", file=sys.stderr,
                      flush=True)
            daemon.start_telemetry_server()
            if daemon.telemetry_address is not None:
                host, port = daemon.telemetry_address
                print(f"telemetry: http://{host}:{port}", file=sys.stderr,
                      flush=True)
            print("ready", file=sys.stderr, flush=True)
            code = daemon.run(sys.stdin, sys.stdout)
    except (KeyboardInterrupt, _Terminated):
        # Orchestrator stop (SIGTERM) or ^C: exit cleanly so the
        # finally block below flushes every requested output.
        code = 0
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        if use_async and daemon is not None and frontend_metrics is not None:
            daemon.batcher.merge_metrics_into(metrics)
        runtime.flush_traces()
        service.close()  # idempotent; daemon.run normally shuts down first
        if args.metrics_out:
            write_metrics(metrics, args.metrics_out)
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
        if trace_sink is not None:
            trace_sink.close()
            print(f"wrote traces to {args.trace_out}", file=sys.stderr)
    return code


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        bundle = ReplayBundle.load(args.bundle)
    except (OSError, ValueError) as error:
        print(f"cannot load bundle: {error}", file=sys.stderr)
        return 1
    env = bundle.environment
    pipeline = _build_pipeline(
        env.get("schema", "employees"),
        int(env.get("train", 0)),
        env.get("search_kernel", KERNEL_COMPILED),
    )
    try:
        results = replay_bundle(pipeline, bundle, index=args.index)
    except ReplayError as error:
        print(f"replay failed: {error}", file=sys.stderr)
        return 1
    drifted = 0
    for position, (record, output, mismatches) in enumerate(results):
        label = args.index if args.index is not None else position
        if mismatches:
            drifted += 1
            print(f"record {label}: DRIFT")
            for mismatch in mismatches:
                print(f"  {mismatch}")
        else:
            print(f"record {label}: OK  {output.sql}")
    print(f"{len(results) - drifted}/{len(results)} record(s) bit-identical")
    return 1 if drifted else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    try:
        bundle = ReplayBundle.load(args.bundle)
    except (OSError, ValueError) as error:
        print(f"cannot load bundle: {error}", file=sys.stderr)
        return 1
    if not bundle.records:
        print("bundle has no records", file=sys.stderr)
        return 1
    if not 0 <= args.index < len(bundle.records):
        print(
            f"record index {args.index} out of range (bundle has "
            f"{len(bundle.records)} record(s))",
            file=sys.stderr,
        )
        return 1
    print(render_record(bundle.records[args.index], gold_sql=args.gold))
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    from repro.errors import BackendUnavailableError
    from repro.execution import (
        ExecutionScorer,
        available_backends,
        backend_for,
        build_instance_catalog,
    )

    tracer, metrics = _observability(args)
    try:
        backend = backend_for(args.db)
    except BackendUnavailableError as error:
        print(f"backend {args.db!r} unavailable: {error}", file=sys.stderr)
        print(f"available: {', '.join(available_backends())}",
              file=sys.stderr)
        return 1
    catalog = build_instance_catalog(args.schema, seed=args.seed)
    timeout = args.timeout_ms / 1000.0 if args.timeout_ms else None
    with ExecutionScorer(
        backend, catalog, timeout=timeout, tracer=tracer, metrics=metrics
    ) as scorer:
        if args.gold is not None:
            score = scorer.score(args.gold, args.sql)
            print(f"verdict     : {score.verdict}")
            print(f"string match: {score.string_match}")
            print(f"gold rows   : {score.gold_rows}")
            print(f"result rows : {score.predicted_rows}")
            if score.reason:
                print(f"why         : {score.reason}")
            _export_observability(args, tracer, metrics)
            return 0 if score.execution_match else 1
        try:
            result = backend.execute(args.sql, timeout=timeout)
        except Exception as error:  # BackendError subclasses
            print(f"execution failed: {error}", file=sys.stderr)
            _export_observability(args, tracer, metrics)
            return 1
        print(f"-- {len(result.rows)} row(s): {result.columns}")
        for row in result.rows[: args.limit]:
            print("  ", row)
        if len(result.rows) > args.limit:
            print(f"   ... ({len(result.rows) - args.limit} more)")
    _export_observability(args, tracer, metrics)
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    catalog = _CATALOGS[args.schema]()
    for table_schema in catalog.schema():
        print(table_schema.name)
        for column in table_schema.columns:
            print(f"  {column.name}: {column.type_name}")
    return 0


def _cmd_speak(args: argparse.Namespace) -> int:
    print(" ".join(verbalize_sql(args.sql)))
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.interface.repl import ReplSession

    pipeline = _build_pipeline(args.schema, args.train)
    metrics = MetricsRegistry() if args.metrics_out else None
    ReplSession(pipeline=pipeline, seed=args.seed, metrics=metrics).run()
    if args.metrics_out and metrics is not None:
        write_metrics(metrics, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    return 0


def _execute(sql: str, pipeline: SpeakQL) -> None:
    try:
        result = execute(parse_select(sql), pipeline.catalog)
    except Exception as error:
        print(f"execution failed: {error}", file=sys.stderr)
        return
    print(f"-- {len(result.rows)} row(s): {result.columns}")
    for row in result.rows[:10]:
        print("  ", row)


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--search-kernel", choices=_KERNELS,
                        default=KERNEL_COMPILED,
                        help="structure-search kernel (all three return "
                             "bit-identical results)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write hierarchical spans as JSON lines")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write collected metrics (.prom/.txt = "
                             "Prometheus text, else a summary table)")
    parser.add_argument("--record-out", metavar="FILE", default=None,
                        help="write forensic query records as a replay "
                             "bundle (see the replay/explain subcommands)")


def build_parser() -> argparse.ArgumentParser:
    from repro.serving.daemon import DEFAULT_MAX_LINE_BYTES

    parser = argparse.ArgumentParser(
        prog="speakql",
        description="SpeakQL reproduction: speech-driven SQL querying.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dictate = sub.add_parser("dictate", help="dictate a SQL query")
    dictate.add_argument("sql")
    dictate.add_argument("--schema", choices=_CATALOGS, default="employees")
    dictate.add_argument("--seed", type=int, default=42)
    dictate.add_argument("--train", type=int, default=100,
                         help="training queries for the custom ASR model")
    dictate.add_argument("--execute", action="store_true")
    dictate.add_argument("--deadline-ms", type=float, default=None,
                         help="latency budget; past-deadline queries stop "
                              "at the next stage boundary")
    _add_observability_args(dictate)
    dictate.set_defaults(func=_cmd_dictate)

    correct = sub.add_parser("correct", help="correct transcription(s)")
    correct.add_argument("transcriptions", nargs="+",
                         metavar="transcription")
    correct.add_argument("--schema", choices=_CATALOGS, default="employees")
    correct.add_argument("--execute", action="store_true")
    correct.add_argument("--workers", type=int, default=1,
                         help="worker threads for batch correction "
                              "(1 = serial, paper-faithful)")
    correct.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request latency budget in milliseconds")
    _add_observability_args(correct)
    correct.set_defaults(func=_cmd_correct)

    serve = sub.add_parser(
        "serve", help="JSON-lines serving daemon (see docs/serving.md)"
    )
    serve.add_argument("--schema", choices=_CATALOGS, default="employees")
    serve.add_argument("--train", type=int, default=0,
                       help="training queries for the custom ASR model")
    serve.add_argument("--search-kernel", choices=_KERNELS,
                       default=KERNEL_COMPILED)
    serve.add_argument("--shards", type=int, default=0, metavar="K",
                       help="shard the structure search over K worker "
                            "processes sharing one in-memory index "
                            "(0 = in-process search; exits non-zero if "
                            "the pool cannot start)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max in-flight requests before shedding")
    serve.add_argument("--degrade-below-ms", type=float, default=None,
                       help="requests with a smaller deadline budget start "
                            "degraded (skip the requested config)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures that trip a rung's "
                            "circuit breaker")
    serve.add_argument("--breaker-cooldown", type=int, default=8,
                       help="requests a tripped rung sits out before its "
                            "half-open trial")
    serve.add_argument("--session-ttl", type=float, default=900.0,
                       metavar="SECONDS",
                       help="idle correction sessions expire after this "
                            "many seconds (default 900)")
    serve.add_argument("--session-limit", type=int, default=64,
                       metavar="N",
                       help="live correction sessions kept before LRU "
                            "eviction (default 64)")
    serve.add_argument("--health-port", type=int, default=None,
                       help="serve /healthz and /readyz on this port "
                            "(0 = ephemeral; omit to disable)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="asyncio front end: concurrent requests "
                            "(pipelined stdin and --port TCP) coalesce "
                            "into micro-batches before dispatch")
    serve.add_argument("--port", type=int, default=None,
                       help="with --async: also accept JSON-lines "
                            "connections on this TCP port (0 = ephemeral; "
                            "stdin EOF still ends the daemon)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="with --async: flush a micro-batch at this "
                            "many coalesced requests")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="with --async: max time a request waits for "
                            "batch-mates before a flush")
    serve.add_argument("--max-line-bytes", type=int,
                       default=DEFAULT_MAX_LINE_BYTES,
                       help="largest accepted request line; longer lines "
                            "get a structured invalid_request error")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write serving metrics on exit")
    serve.add_argument("--telemetry-port", type=int, default=None,
                       help="serve GET /metrics and /statusz on this "
                            "dedicated port (0 = ephemeral); with "
                            "--health-port the probe port serves them "
                            "too in non-async mode")
    serve.add_argument("--trace-out", metavar="FILE", default=None,
                       help="stream sampled request traces as JSON-lines "
                            "spans into a size-capped rotating file")
    serve.add_argument("--trace-sample-rate", type=float, default=1.0,
                       help="fraction of requests to trace when "
                            "--trace-out is set (0.0-1.0)")
    serve.add_argument("--trace-max-bytes", type=int, default=16 << 20,
                       help="rotate the --trace-out file before a write "
                            "would exceed this size")
    serve.set_defaults(func=_cmd_serve)

    execute = sub.add_parser(
        "execute",
        help="run SQL on a real execution backend (docs/execution.md)",
    )
    execute.add_argument("sql")
    execute.add_argument("--db", choices=("sqlite", "duckdb"),
                         default="sqlite",
                         help="execution backend (duckdb requires the "
                              "optional duckdb package)")
    execute.add_argument("--schema", choices=_CATALOGS, default="employees")
    execute.add_argument("--seed", type=int, default=None,
                         help="instance seed (default: the schema's "
                              "canonical seed)")
    execute.add_argument("--gold", default=None, metavar="SQL",
                         help="ground-truth SQL: print the execution-"
                              "accuracy verdict instead of rows (exit 0 "
                              "only on a match)")
    execute.add_argument("--timeout-ms", type=float, default=5000.0,
                         help="per-query execution timeout (0 disables)")
    execute.add_argument("--limit", type=int, default=10,
                         help="max rows to print")
    execute.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write hierarchical spans as JSON lines")
    execute.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write collected metrics")
    execute.set_defaults(func=_cmd_execute)

    schema = sub.add_parser("schema", help="print a built-in schema")
    schema.add_argument("--schema", choices=_CATALOGS, default="employees")
    schema.set_defaults(func=_cmd_schema)

    speak = sub.add_parser("speak", help="spoken rendering of a query")
    speak.add_argument("sql")
    speak.set_defaults(func=_cmd_speak)

    replay = sub.add_parser(
        "replay", help="re-execute a replay bundle, asserting bit-identity"
    )
    replay.add_argument("bundle", help="replay bundle written by --record-out")
    replay.add_argument("--index", type=int, default=None,
                        help="replay only the record at this index")
    replay.set_defaults(func=_cmd_replay)

    explain = sub.add_parser(
        "explain", help="render one recorded query as a forensic narrative"
    )
    explain.add_argument("bundle", help="replay bundle written by --record-out")
    explain.add_argument("--index", type=int, default=0,
                         help="record to explain (default: 0)")
    explain.add_argument("--gold", default=None, metavar="SQL",
                         help="ground-truth SQL: adds a miss-attribution "
                              "verdict to the narrative")
    explain.set_defaults(func=_cmd_explain)

    repl = sub.add_parser("repl", help="interactive SpeakQL session")
    repl.add_argument("--schema", choices=_CATALOGS, default="employees")
    repl.add_argument("--train", type=int, default=100)
    repl.add_argument("--seed", type=int, default=1)
    repl.add_argument("--metrics-out", metavar="FILE", default=None,
                      help="write session metrics on exit (also prints a "
                           "summary table)")
    repl.set_defaults(func=_cmd_repl)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `speakql schema | head`) closed early:
        # standard Unix behaviour is to exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
