#!/usr/bin/env python3
"""Append a benchmark run to the trajectory log and gate on regression.

Reads a ``BENCH_*.json`` report (the output of
``benchmarks/bench_search_perf.py`` or ``benchmarks/bench_serving.py``),
appends one compact line to a JSON-lines history file, and exits
non-zero when the new run's primary median latency regressed by more
than the allowed fraction against the *previous* entry with the same
key.

The key includes the workload size (``structure_search_kernels@max15``,
``serving_throughput@q40ms50``), so a CI smoke run is only ever
compared against earlier smoke runs — never against the committed
full-size report.  A ``serving_shard_scaling`` report (the
``--scale-shards`` sweep of ``bench_serving.py``) appends one entry
per shard count, keyed ``serving_shard_scaling@q40ms0s2``, and a
``serving_open_loop`` report (the ``--open-loop`` sweep) one entry per
micro-batch size, keyed ``serving_open_loop@q64r200b8``, and a
``telemetry_overhead`` report (the ``--telemetry-overhead`` pricing of
the live telemetry plane) one entry per observability configuration,
keyed ``telemetry_overhead@q32cmetrics`` — each configuration tracks
its own trajectory.  A ``session`` report (``bench_session.py``)
appends one entry per phase — cold full decode vs warm correction
turn — keyed ``session@q32m18pcold`` / ``session@q32m18pwarm``.

Every entry is stamped with the machine's core count (``nproc``), and
the regression gate only compares entries recorded on the same core
count: a run on a 1-core CI box is never judged against a 16-core
workstation's trajectory.  Entries predating the stamp compare against
anything (there is nothing to disagree with).

Exit status: 0 (appended, no regression or first run for the key),
1 (appended, regression beyond the threshold), 2 (unusable input).
Run from anywhere::

    python tools/bench_history.py BENCH_structure_search.json
    python tools/bench_history.py /tmp/bench_smoke.json \
        --history BENCH_history.jsonl --max-regression 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: Allowed fractional slowdown of the primary median before exit 1.
DEFAULT_MAX_REGRESSION = 0.25


def machine_stamp() -> dict:
    """Hardware facts every entry carries (compare like with like)."""
    return {"nproc": os.cpu_count()}


def entry_from_report(report: dict, source: str) -> dict:
    """One history line from a bench report (raises KeyError when malformed).

    Two report shapes are understood: the search-kernel report of
    ``benchmarks/bench_search_perf.py`` (the default) and the serving
    throughput report of ``benchmarks/bench_serving.py``.  Both yield a
    ``median_ms``, which is what the regression gate compares.
    """
    if report.get("benchmark") in ("serving_shard_scaling",
                                   "serving_open_loop",
                                   "telemetry_overhead"):
        raise KeyError(
            f"{report['benchmark']} reports expand to one entry per row; "
            "use entries_from_report"
        )
    if report.get("benchmark") == "serving_throughput":
        deadline_ms = report["deadline_ms"]
        return {
            "key": (
                f"{report['benchmark']}@q{report['queries']}"
                f"ms{deadline_ms if deadline_ms is not None else 0:g}"
            ),
            "benchmark": report["benchmark"],
            "queries": report["queries"],
            "deadline_ms": deadline_ms,
            "workers": report["workers"],
            "median_ms": report["median_ms"],
            "p95_ms": report["p95_ms"],
            "throughput_qps": report["throughput_qps"],
            "answered_fraction": report["answered_fraction"],
            "outcomes": report["outcomes"],
            "source": source,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **machine_stamp(),
        }
    primary_k = report["primary_k"]
    primary = report["results"][f"k={primary_k}"]
    return {
        "key": f"{report['benchmark']}@max{report['max_tokens']}",
        "benchmark": report["benchmark"],
        "max_tokens": report["max_tokens"],
        "primary_k": primary_k,
        "queries": primary["compiled"]["queries"],
        "median_ms": primary["compiled"]["median_ms"],
        "p95_ms": primary["compiled"]["p95_ms"],
        "median_speedup": primary["median_speedup"],
        "source": source,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **machine_stamp(),
    }


def entries_from_report(report: dict, source: str) -> list[dict]:
    """All history lines from a report — usually one, but the
    ``serving_shard_scaling`` and ``serving_open_loop`` sweeps yield one
    per row (shard count / micro-batch size)."""
    benchmark = report.get("benchmark")
    recorded_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    stamp = machine_stamp()
    if benchmark == "serving_open_loop":
        base_key = (
            f"{benchmark}@q{report['queries']}r{report['rate']:g}"
        )
        return [
            {
                "key": f"{base_key}b{row['batch_size']}",
                "benchmark": benchmark,
                "queries": report["queries"],
                "rate": report["rate"],
                "arrivals": report["arrivals"],
                "deadline_ms": report["deadline_ms"],
                "batch_size": row["batch_size"],
                "median_ms": row["median_ms"],
                "p95_ms": row["p95_ms"],
                "p99_ms": row["p99_ms"],
                "throughput_qps": row["throughput_qps"],
                "speedup_vs_first": row["speedup_vs_first"],
                "answered_fraction": row["answered_fraction"],
                "outcomes": row["outcomes"],
                "source": source,
                "recorded_at": recorded_at,
                **stamp,
            }
            for row in report["rows"]
        ]
    if benchmark == "telemetry_overhead":
        # One entry per observability configuration (off / metrics /
        # metrics+trace1pct), so each configuration's latency tracks
        # its own trajectory and the regression gate compares like
        # with like.
        base_key = f"{benchmark}@q{report['queries']}"
        return [
            {
                "key": f"{base_key}c{row['config']}",
                "benchmark": benchmark,
                "queries": report["queries"],
                "deadline_ms": report["deadline_ms"],
                "repeats": report["repeats"],
                "config": row["config"],
                "median_ms": row["median_ms"],
                "p95_ms": row["p95_ms"],
                "throughput_qps": row["throughput_qps"],
                "overhead_vs_off": row["overhead_vs_off"],
                "answered_fraction": row["answered_fraction"],
                "outcomes": row["outcomes"],
                "source": source,
                "recorded_at": recorded_at,
                **stamp,
            }
            for row in report["rows"]
        ]
    if benchmark == "session":
        # One entry per phase (cold full decode vs warm correction
        # turn), so each latency tracks its own trajectory and the
        # regression gate never compares a clause-sized search against
        # a query-sized one.
        base_key = f"{benchmark}@q{report['queries']}m{report['max_tokens']}"
        return [
            {
                "key": f"{base_key}p{row['phase']}",
                "benchmark": benchmark,
                "queries": report["queries"],
                "max_tokens": report["max_tokens"],
                "phase": row["phase"],
                "median_ms": row["median_ms"],
                "p95_ms": row["p95_ms"],
                "speedup_p50": report["speedup_p50"],
                "reused_span_fraction": row.get("reused_span_fraction"),
                "source": source,
                "recorded_at": recorded_at,
                **stamp,
            }
            for row in report["rows"]
        ]
    if benchmark != "serving_shard_scaling":
        return [entry_from_report(report, source)]
    deadline_ms = report["deadline_ms"]
    base_key = (
        f"{benchmark}@q{report['queries']}"
        f"ms{deadline_ms if deadline_ms is not None else 0:g}"
    )
    return [
        {
            "key": f"{base_key}s{row['shards']}",
            "benchmark": benchmark,
            "queries": report["queries"],
            "deadline_ms": deadline_ms,
            "shards": row["shards"],
            "median_ms": row["median_ms"],
            "p95_ms": row["p95_ms"],
            "throughput_qps": row["throughput_qps"],
            "speedup_vs_first": row["speedup_vs_first"],
            "answered_fraction": row["answered_fraction"],
            "outcomes": row["outcomes"],
            "source": source,
            "recorded_at": recorded_at,
            **stamp,
        }
        for row in report["rows"]
    ]


def read_history(path: Path) -> list[dict]:
    if not path.is_file():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def append_entry(path: Path, entry: dict) -> None:
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def check_regression(
    entry: dict,
    history: list[dict],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> str | None:
    """A human-readable verdict when ``entry`` regressed, else ``None``.

    Compares against the most recent earlier entry sharing the key
    *and* core count — latency on a 1-core box is not a regression of a
    16-core run.  Entries predating the ``nproc`` stamp match any core
    count.
    """
    previous = next(
        (
            e
            for e in reversed(history)
            if e.get("key") == entry["key"]
            and (
                e.get("nproc") is None
                or e.get("nproc") == entry.get("nproc")
            )
        ),
        None,
    )
    if previous is None:
        return None
    baseline = previous.get("median_ms")
    if not baseline or baseline <= 0:
        return None
    ratio = entry["median_ms"] / baseline
    if ratio > 1.0 + max_regression:
        return (
            f"{entry['key']}: median {entry['median_ms']:.2f} ms is "
            f"{(ratio - 1.0) * 100:.0f}% slower than the previous entry "
            f"({baseline:.2f} ms; allowed +{max_regression * 100:.0f}%)"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_*.json report to append")
    parser.add_argument(
        "--history", default=str(DEFAULT_HISTORY),
        help="JSON-lines trajectory file (default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional median slowdown vs the previous entry "
             "with the same key (default: 0.25)",
    )
    args = parser.parse_args(argv)

    report_path = Path(args.report)
    try:
        report = json.loads(report_path.read_text(encoding="utf-8"))
        entries = entries_from_report(report, source=report_path.name)
    except (OSError, ValueError, KeyError) as error:
        print(f"unusable bench report {args.report}: {error!r}",
              file=sys.stderr)
        return 2

    history_path = Path(args.history)
    history = read_history(history_path)
    verdicts = []
    for entry in entries:
        verdict = check_regression(entry, history, args.max_regression)
        if verdict is not None:
            verdicts.append(verdict)
        # Append even on regression: the trajectory must record every
        # run, the exit code is the gate.
        append_entry(history_path, entry)
        if "median_speedup" in entry:
            extra = f"speedup {entry['median_speedup']:.2f}x"
        elif "throughput_qps" in entry:
            extra = f"throughput {entry['throughput_qps']:.1f} q/s"
        else:
            extra = f"speedup {entry['speedup_p50']:.1f}x cold/warm"
        print(
            f"appended {entry['key']} (median {entry['median_ms']:.2f} ms, "
            f"{extra}) to {history_path}"
        )
    for verdict in verdicts:
        print(f"REGRESSION: {verdict}", file=sys.stderr)
    return 1 if verdicts else 0


if __name__ == "__main__":
    raise SystemExit(main())
