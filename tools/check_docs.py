#!/usr/bin/env python3
"""Check intra-repository links in the project's markdown docs.

Scans the given markdown files (default: ``README.md`` plus every
``.md`` anywhere under ``docs/``, subdirectories included — new docs
are discovered automatically and can't silently rot) for
``[text](target)`` links, resolves each relative target against the
linking file, and reports targets that do not exist.  External links
(``http[s]://``, ``mailto:``) and pure in-page anchors (``#section``)
are skipped; a ``path#anchor`` target is checked for the path only.
A directory argument expands to every markdown file under it.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).  Run from anywhere::

    python tools/check_docs.py            # default doc set
    python tools/check_docs.py README.md docs/observability.md
    python tools/check_docs.py docs/      # everything under docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — non-greedy text, target up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def default_doc_set(root: Path = REPO_ROOT) -> list[Path]:
    """README plus every markdown file anywhere under ``docs/``.

    Discovery is recursive on purpose: a doc added in a subdirectory
    (or a brand-new doc) is linted from its first commit without anyone
    remembering to point the checker at it.
    """
    docs_dir = root / "docs"
    docs = sorted(docs_dir.rglob("*.md")) if docs_dir.is_dir() else []
    readme = root / "README.md"
    return ([readme] if readme.is_file() else []) + docs


def expand_args(args: list[str]) -> list[Path]:
    """Resolve CLI arguments; directories expand to their markdown files."""
    paths: list[Path] = []
    for arg in args:
        path = Path(arg).resolve()
        if path.is_dir():
            paths.extend(sorted(path.rglob("*.md")))
        else:
            paths.append(path)
    return paths


def iter_links(markdown: str):
    """Yield every link target in ``markdown``, in order."""
    for match in _LINK.finditer(markdown):
        yield match.group(1)


def broken_links(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` for each unresolvable link in ``path``."""
    problems = []
    in_repo = REPO_ROOT in path.resolve().parents
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"missing: {resolved}"))
        elif in_repo and REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            # A repo doc linking outside the repo would break on clone.
            problems.append((target, f"escapes the repository: {resolved}"))
    return problems


def check(paths: list[Path]) -> list[str]:
    """Human-readable problem lines for every broken link in ``paths``."""
    lines = []
    for path in paths:
        if not path.is_file():
            lines.append(f"{path}: file not found")
            continue
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:  # a doc outside the repo: show it absolute
            shown = path
        for target, reason in broken_links(path):
            lines.append(f"{shown}: ({target}) {reason}")
    return lines


def main(argv: list[str]) -> int:
    paths = expand_args(argv) or default_doc_set()
    problems = check(paths)
    for line in problems:
        print(line, file=sys.stderr)
    if not problems:
        print(f"checked {len(paths)} file(s): all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
