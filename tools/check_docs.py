#!/usr/bin/env python3
"""Check intra-repository links in the project's markdown docs.

Scans the given markdown files (default: ``README.md`` plus every
``.md`` under ``docs/``) for ``[text](target)`` links, resolves each
relative target against the linking file, and reports targets that do
not exist.  External links (``http[s]://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; a ``path#anchor`` target is
checked for the path only.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).  Run from anywhere::

    python tools/check_docs.py            # default doc set
    python tools/check_docs.py README.md docs/observability.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — non-greedy text, target up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def default_doc_set(root: Path = REPO_ROOT) -> list[Path]:
    """README plus every markdown file under ``docs/``."""
    docs = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    return ([readme] if readme.is_file() else []) + docs


def iter_links(markdown: str):
    """Yield every link target in ``markdown``, in order."""
    for match in _LINK.finditer(markdown):
        yield match.group(1)


def broken_links(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` for each unresolvable link in ``path``."""
    problems = []
    in_repo = REPO_ROOT in path.resolve().parents
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"missing: {resolved}"))
        elif in_repo and REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            # A repo doc linking outside the repo would break on clone.
            problems.append((target, f"escapes the repository: {resolved}"))
    return problems


def check(paths: list[Path]) -> list[str]:
    """Human-readable problem lines for every broken link in ``paths``."""
    lines = []
    for path in paths:
        if not path.is_file():
            lines.append(f"{path}: file not found")
            continue
        for target, reason in broken_links(path):
            lines.append(f"{path.relative_to(REPO_ROOT)}: ({target}) {reason}")
    return lines


def main(argv: list[str]) -> int:
    paths = [Path(arg).resolve() for arg in argv] or default_doc_set()
    problems = check(paths)
    for line in problems:
        print(line, file=sys.stderr)
    if not problems:
        print(f"checked {len(paths)} file(s): all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
