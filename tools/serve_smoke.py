#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon (CI).

Spawns the daemon as a subprocess with an ephemeral health port, drives
three requests over its JSON-lines stdin/stdout — a correction, a
dictation, and a dictation with a 1 ms deadline — and asserts:

- the first two come back ``served`` with non-empty SQL;
- the 1 ms-deadline request comes back ``timeout`` (cooperative
  deadline enforcement, no crash);
- every reply echoes a non-empty ``trace_id`` (the daemon generates one
  when the client does not supply it);
- a two-turn correction session round-trips: a cold dictation opens the
  session, a WHERE re-dictation comes back with non-empty
  ``reused_spans``, and its final SQL matches a sessionless cold
  recompute of the corrected text (both daemons);
- ``GET /healthz`` answers 200 with the matching outcome counts and
  ``GET /readyz`` reports readiness;
- ``GET /metrics`` serves Prometheus text naming the serving counters
  and the rolling end-to-end window (plus the per-shard kernel counters
  with ``shard=`` labels when ``--shards`` is on), and ``GET /statusz``
  reports the degradation ladder, breaker states, queue occupancy, and
  rolling latency percentiles;
- the daemon exits cleanly on stdin EOF.

``--shards K`` runs the daemon with a sharded search pool; the same
assertions apply (sharding is bit-identical and invisible on the wire),
plus ``/healthz`` must report K shards with a live worker in each and
the daemon must leave no worker processes behind after EOF.

``--async-batch`` smokes the micro-batching asyncio front end instead
(``repro serve --async --port 0``): two concurrent TCP clients fire
requests simultaneously (coalesced into shared batches), a 1 ms-deadline
request still times out, a deliberately oversized (> 1 MiB) line gets a
structured ``invalid_request`` error with the connection surviving to
serve another request, and stdin EOF still shuts everything down
cleanly.

Run from the repository root::

    python tools/serve_smoke.py
    python tools/serve_smoke.py --shards 2
    python tools/serve_smoke.py --async-batch
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Whole-smoke watchdog; the daemon is killed when it expires.
TIMEOUT_S = 180.0

REQUESTS = [
    {"id": 1, "text": "select salary from salaries"},
    {"id": 2, "text": "SELECT FirstName FROM Employees", "seed": 7},
    {"id": 3, "text": "SELECT FirstName FROM Employees", "seed": 7,
     "deadline_ms": 1},
]

#: The two-turn session exchange: cold dictation, WHERE re-dictation,
#: then a sessionless full decode of the corrected text for parity.
SESSION_BASE = "select first name from employees"
SESSION_EDIT = {"kind": "redictate", "clause": "WHERE",
                "text": "where gender equals f"}
SESSION_FULL = "select first name from employees where gender equals f"


def check_session_exchange(send, read, prefix: str) -> None:
    """Drive a correction session over the wire and assert parity.

    ``send``/``read`` are the transport (stdin/stdout lines or a TCP
    client); the final SQL of the incremental turn must match a cold
    sessionless recompute of the same corrected text, and the turn must
    report the spans it spliced from the session cache.
    """
    send({"id": f"{prefix}0", "text": SESSION_BASE,
          "session_id": f"{prefix}-smoke", "turn": 0})
    cold0 = read()
    if cold0.get("outcome") != "served" or cold0.get("turn") != 0:
        fail(f"session turn 0 not served: {cold0}")
    if cold0.get("protocol_version") != 1:
        fail(f"reply carries no protocol_version: {cold0}")
    send({"id": f"{prefix}1", "session_id": f"{prefix}-smoke", "turn": 1,
          "edit": SESSION_EDIT})
    warm = read()
    if warm.get("outcome") != "served" or warm.get("turn") != 1:
        fail(f"correction turn not served: {warm}")
    if not warm.get("reused_spans"):
        fail(f"correction turn reused no spans: {warm}")
    send({"id": f"{prefix}2", "text": SESSION_FULL})
    recompute = read()
    if recompute.get("outcome") != "served":
        fail(f"cold recompute not served: {recompute}")
    if not warm.get("sql") or warm["sql"] != recompute.get("sql"):
        fail(f"incremental SQL drifted from the cold recompute: "
             f"{warm.get('sql')!r} vs {recompute.get('sql')!r}")


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as r:
        return r.status, r.read()


def check_telemetry(base_url: str, *, shards: int = 0,
                    expect_batcher: bool = False) -> None:
    """Assert /metrics and /statusz on ``base_url`` look operable."""
    status, body = fetch(base_url + "/metrics")
    if status != 200:
        fail(f"/metrics answered {status}")
    page = body.decode("utf-8")
    required = ["speakql_serving_requests_total",
                "speakql_serving_outcomes_total",
                "speakql_serving_e2e_window_seconds"]
    if expect_batcher:
        required.append("speakql_batch_flush_total")
    if shards:
        required += ["speakql_shard_nodes_visited_total",
                     "speakql_shard_rows_pruned_total"]
    for name in required:
        if name not in page:
            fail(f"/metrics is missing {name}")
    if shards and f'shard="{shards - 1}"' not in page:
        fail(f"/metrics has no shard=\"{shards - 1}\" labelled series")

    status, body = fetch(base_url + "/statusz")
    if status != 200:
        fail(f"/statusz answered {status}")
    statusz = json.loads(body)
    for key in ("status", "uptime_seconds", "queue", "outcomes",
                "ladder", "latency"):
        if key not in statusz:
            fail(f"/statusz is missing {key!r}: {sorted(statusz)}")
    ladder = statusz["ladder"]
    if not ladder.get("rungs") or "breakers" not in ladder:
        fail(f"/statusz ladder lacks rungs/breakers: {ladder}")
    for breaker in ladder["breakers"].values():
        if breaker not in ("closed", "half-open", "open"):
            fail(f"unexpected breaker state: {ladder['breakers']}")
    latency = statusz["latency"]
    for side in ("rolling", "cumulative"):
        quantiles = latency.get(side) or {}
        if not {"count", "p50_ms", "p95_ms", "p99_ms"} <= set(quantiles):
            fail(f"/statusz latency.{side} incomplete: {latency}")
    if shards and not statusz.get("shard_pool_ok", False):
        fail(f"/statusz reports unhealthy shard pool: {statusz.get('shards')}")


class _TcpClient:
    """One JSON-lines TCP connection to the async daemon."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.sock = socket.create_connection(address, timeout=60)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def send(self, request: dict) -> None:
        self.sock.sendall((json.dumps(request) + "\n").encode("utf-8"))

    def send_raw(self, payload: bytes) -> None:
        self.sock.sendall(payload)

    def read(self) -> dict:
        line = self.reader.readline()
        if not line:
            fail("async daemon closed a TCP connection mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        self.reader.close()
        self.sock.close()


def run_async_smoke(env: dict) -> int:
    command = [sys.executable, "-m", "repro", "serve",
               "--schema", "employees", "--health-port", "0",
               "--async", "--port", "0", "--telemetry-port", "0",
               "--batch-size", "4", "--batch-wait-ms", "5"]
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    watchdog = threading.Timer(TIMEOUT_S, proc.kill)
    watchdog.start()
    clients: list[_TcpClient] = []
    try:
        # Banner: health address, telemetry address, TCP address, then
        # "ready".
        health_line = proc.stderr.readline().strip()
        if not health_line.startswith("health: http://"):
            fail(f"expected the health address first, got {health_line!r}")
        health_url = health_line.split(" ", 1)[1]
        telemetry_line = proc.stderr.readline().strip()
        if not telemetry_line.startswith("telemetry: http://"):
            fail(f"expected the telemetry address next, got "
                 f"{telemetry_line!r}")
        telemetry_url = telemetry_line.split(" ", 1)[1]
        tcp_line = proc.stderr.readline().strip()
        if not tcp_line.startswith("tcp: "):
            fail(f"expected the tcp address next, got {tcp_line!r}")
        host, _, port = tcp_line.split(" ", 1)[1].rpartition(":")
        if proc.stderr.readline().strip() != "ready":
            fail("async daemon never reported ready")
        address = (host, int(port))

        # Two clients fire concurrently so their requests coalesce into
        # shared micro-batches; responses correlate by id.
        clients = [_TcpClient(address), _TcpClient(address)]
        batches = (
            [{"id": "a1", "text": "select salary from salaries"},
             {"id": "a2", "text": "SELECT FirstName FROM Employees",
              "seed": 7}],
            [{"id": "b1", "text": "select last name from employees"},
             {"id": "b2", "text": "SELECT Salary FROM Employees",
              "seed": 11}],
        )

        def drive(client: _TcpClient, requests: list[dict], out: dict):
            for request in requests:
                client.send(request)
            for _ in requests:
                response = client.read()
                out[response.get("id")] = response

        replies: dict = {}
        threads = [
            threading.Thread(target=drive, args=(c, b, replies))
            for c, b in zip(clients, batches)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        for batch in batches:
            for request in batch:
                response = replies.get(request["id"])
                if response is None:
                    fail(f"no reply for {request['id']}: {replies}")
                if (response.get("outcome") != "served"
                        or not response.get("sql")):
                    fail(f"request {request['id']} not served: {response}")

        # A 1 ms budget is consumed before the pipeline can finish: the
        # batcher must flush it promptly and the runtime must time out.
        clients[0].send({"id": "t1",
                         "text": "SELECT FirstName FROM Employees",
                         "seed": 7, "deadline_ms": 1})
        timed_out = clients[0].read()
        if timed_out.get("outcome") != "timeout":
            fail(f"1 ms deadline did not time out: {timed_out}")

        # An oversized frame (beyond the 1 MiB default) draws a
        # structured error and the connection keeps serving.
        clients[1].send_raw(b"\"" + b"x" * (1 << 20) + b"\"\n")
        oversized = clients[1].read()
        if oversized.get("error_kind") != "invalid_request":
            fail(f"oversized line not rejected structurally: {oversized}")
        clients[1].send({"id": "b3", "text": "select salary from salaries"})
        after = clients[1].read()
        if after.get("outcome") != "served":
            fail(f"connection did not survive the oversized line: {after}")

        # Every batched reply must still echo a wire trace id.
        for key, response in replies.items():
            if not response.get("trace_id"):
                fail(f"reply {key} carries no trace_id: {response}")

        # A two-turn correction session over one connection: the
        # incremental turn must reuse spans and match a cold recompute.
        check_session_exchange(
            clients[0].send, clients[0].read, prefix="as"
        )

        with urllib.request.urlopen(health_url + "/healthz", timeout=10) as r:
            if r.status != 200:
                fail(f"/healthz answered {r.status}")
            health = json.loads(r.read())
        if health["outcomes"].get("served") != 8:
            fail(f"healthz served count != 8: {health['outcomes']}")
        if health["outcomes"].get("timeout") != 1:
            fail(f"healthz timeout count != 1: {health['outcomes']}")

        # The dedicated telemetry port runs on the event loop and must
        # see the batcher's loop-confined flush counters live.
        check_telemetry(telemetry_url, expect_batcher=True)

        for client in clients:
            client.close()
        proc.stdin.close()
        code = proc.wait(timeout=30)
        if code != 0:
            fail(f"async daemon exited {code} on stdin EOF")
    finally:
        watchdog.cancel()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print(
        "serve smoke OK (async): 8 served over 2 concurrent TCP clients "
        "(incl. a two-turn correction session), 1 timeout, oversized line "
        "rejected without dropping the connection"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=0,
                        help="run the daemon with a K-worker shard pool")
    parser.add_argument("--async-batch", action="store_true",
                        help="smoke the micro-batching asyncio front end "
                             "over concurrent TCP clients instead")
    args = parser.parse_args()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    if args.async_batch:
        return run_async_smoke(env)
    command = [sys.executable, "-m", "repro", "serve",
               "--schema", "employees", "--health-port", "0"]
    if args.shards:
        command += ["--shards", str(args.shards)]
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    watchdog = threading.Timer(TIMEOUT_S, proc.kill)
    watchdog.start()
    try:
        # Startup banner on stderr: the health address, then "ready".
        health_line = proc.stderr.readline().strip()
        if not health_line.startswith("health: http://"):
            fail(f"expected the health address first, got {health_line!r}")
        health_url = health_line.split(" ", 1)[1]
        if proc.stderr.readline().strip() != "ready":
            fail("daemon never reported ready")

        responses = []
        for request in REQUESTS:
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            line = proc.stdout.readline()
            if not line:
                fail(f"daemon died on request {request['id']}")
            responses.append(json.loads(line))

        for request, response in zip(REQUESTS[:2], responses[:2]):
            if response.get("id") != request["id"]:
                fail(f"id mismatch: sent {request['id']}, got {response}")
            if response.get("outcome") != "served" or not response.get("sql"):
                fail(f"request {request['id']} not served: {response}")
        timed_out = responses[2]
        if timed_out.get("outcome") != "timeout":
            fail(f"1 ms deadline did not time out: {timed_out}")
        if "deadline exceeded" not in (timed_out.get("error") or ""):
            fail(f"timeout carries no deadline error: {timed_out}")
        for response in responses:
            if not response.get("trace_id"):
                fail(f"reply carries no trace_id: {response}")

        # The same two-turn session exchange the async smoke drives.
        def send(request: dict) -> None:
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()

        def read() -> dict:
            line = proc.stdout.readline()
            if not line:
                fail("daemon died during the session exchange")
            return json.loads(line)

        check_session_exchange(send, read, prefix="s")

        for probe in ("/healthz", "/readyz"):
            with urllib.request.urlopen(health_url + probe, timeout=10) as r:
                if r.status != 200:
                    fail(f"{probe} answered {r.status}")
                if probe == "/healthz":
                    health = json.loads(r.read())
        if health["outcomes"]["served"] != 5:
            fail(f"healthz served count != 5: {health['outcomes']}")
        if health["outcomes"]["timeout"] != 1:
            fail(f"healthz timeout count != 1: {health['outcomes']}")
        if args.shards:
            shards = health.get("shards") or {}
            if shards.get("shards") != args.shards:
                fail(f"expected {args.shards} shards in healthz: {shards}")
            if not health.get("shard_pool_ok"):
                fail(f"shard pool not healthy: {shards}")

        # The probe port doubles as the telemetry plane in serial mode.
        check_telemetry(health_url, shards=args.shards)

        proc.stdin.close()
        code = proc.wait(timeout=30)
        if code != 0:
            fail(f"daemon exited {code} on stdin EOF")
    finally:
        watchdog.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    suffix = f" ({args.shards} shards)" if args.shards else ""
    print(
        "serve smoke OK: 5 served (incl. a two-turn correction session), "
        f"1 timeout, health and readiness probes answered{suffix}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
