#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon (CI).

Spawns the daemon as a subprocess with an ephemeral health port, drives
three requests over its JSON-lines stdin/stdout — a correction, a
dictation, and a dictation with a 1 ms deadline — and asserts:

- the first two come back ``served`` with non-empty SQL;
- the 1 ms-deadline request comes back ``timeout`` (cooperative
  deadline enforcement, no crash);
- ``GET /healthz`` answers 200 with the matching outcome counts and
  ``GET /readyz`` reports readiness;
- the daemon exits cleanly on stdin EOF.

``--shards K`` runs the daemon with a sharded search pool; the same
assertions apply (sharding is bit-identical and invisible on the wire),
plus ``/healthz`` must report K shards with a live worker in each and
the daemon must leave no worker processes behind after EOF.

Run from the repository root::

    python tools/serve_smoke.py
    python tools/serve_smoke.py --shards 2
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Whole-smoke watchdog; the daemon is killed when it expires.
TIMEOUT_S = 180.0

REQUESTS = [
    {"id": 1, "text": "select salary from salaries"},
    {"id": 2, "text": "SELECT FirstName FROM Employees", "seed": 7},
    {"id": 3, "text": "SELECT FirstName FROM Employees", "seed": 7,
     "deadline_ms": 1},
]


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=0,
                        help="run the daemon with a K-worker shard pool")
    args = parser.parse_args()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    command = [sys.executable, "-m", "repro", "serve",
               "--schema", "employees", "--health-port", "0"]
    if args.shards:
        command += ["--shards", str(args.shards)]
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    watchdog = threading.Timer(TIMEOUT_S, proc.kill)
    watchdog.start()
    try:
        # Startup banner on stderr: the health address, then "ready".
        health_line = proc.stderr.readline().strip()
        if not health_line.startswith("health: http://"):
            fail(f"expected the health address first, got {health_line!r}")
        health_url = health_line.split(" ", 1)[1]
        if proc.stderr.readline().strip() != "ready":
            fail("daemon never reported ready")

        responses = []
        for request in REQUESTS:
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            line = proc.stdout.readline()
            if not line:
                fail(f"daemon died on request {request['id']}")
            responses.append(json.loads(line))

        for request, response in zip(REQUESTS[:2], responses[:2]):
            if response.get("id") != request["id"]:
                fail(f"id mismatch: sent {request['id']}, got {response}")
            if response.get("outcome") != "served" or not response.get("sql"):
                fail(f"request {request['id']} not served: {response}")
        timed_out = responses[2]
        if timed_out.get("outcome") != "timeout":
            fail(f"1 ms deadline did not time out: {timed_out}")
        if "deadline exceeded" not in (timed_out.get("error") or ""):
            fail(f"timeout carries no deadline error: {timed_out}")

        for probe in ("/healthz", "/readyz"):
            with urllib.request.urlopen(health_url + probe, timeout=10) as r:
                if r.status != 200:
                    fail(f"{probe} answered {r.status}")
                if probe == "/healthz":
                    health = json.loads(r.read())
        if health["outcomes"]["served"] != 2:
            fail(f"healthz served count != 2: {health['outcomes']}")
        if health["outcomes"]["timeout"] != 1:
            fail(f"healthz timeout count != 1: {health['outcomes']}")
        if args.shards:
            shards = health.get("shards") or {}
            if shards.get("shards") != args.shards:
                fail(f"expected {args.shards} shards in healthz: {shards}")
            if not health.get("shard_pool_ok"):
                fail(f"shard pool not healthy: {shards}")

        proc.stdin.close()
        code = proc.wait(timeout=30)
        if code != 0:
            fail(f"daemon exited {code} on stdin EOF")
    finally:
        watchdog.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    suffix = f" ({args.shards} shards)" if args.shards else ""
    print(
        "serve smoke OK: 2 served, 1 timeout, health and readiness probes "
        f"answered{suffix}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
